//! Wall-clock timing of the identification stages (Table IV), plus
//! training throughput and the batched-vs-sequential classification
//! comparison.

use std::time::{Duration, Instant};

use sentinel_core::{
    BankConfig, ClassifierBank, ClassifyScratch, FingerprintDataset, Identifier, IdentifierConfig,
};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::editdist::normalized_distance;
use sentinel_fingerprint::{extract, extract_frames, FixedFingerprint};
use sentinel_ml::{Dataset, RandomForest};
use sentinel_sdn::stats::Summary;

/// Timing measurements mirroring the rows of Table IV.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// One Random Forest classification.
    pub one_classification: Summary,
    /// One edit-distance discrimination (distance to one reference).
    pub one_discrimination: Summary,
    /// Fingerprint extraction from a captured setup trace.
    pub fingerprint_extraction: Summary,
    /// All 27 classifications of one fingerprint.
    pub all_classifications: Summary,
    /// The discrimination step of a full identification (all edit
    /// distances, when triggered).
    pub discrimination_step: Summary,
    /// Full type identification (classification + discrimination).
    pub type_identification: Summary,
    /// Mean edit-distance computations per identification.
    pub mean_edit_distances: f64,
    /// Fraction of identifications requiring discrimination.
    pub discrimination_rate: f64,
    /// All 27 classifications of a 64-fingerprint batch, one
    /// [`Identifier::classify`] call per item (fingerprint-major).
    pub batch_classify_sequential: Summary,
    /// The same batch through [`Identifier::classify_batch`]
    /// (forest-major) — identical results, cache-friendlier walk.
    pub batch_classify_batched: Summary,
    /// The same batch through [`Identifier::classify_batch_in`] with a
    /// warm [`ClassifyScratch`] — the streaming runtime's steady-state
    /// shape: one contiguous batch copy, zero per-tick heap
    /// allocations (pinned by sentinel-core's `alloc_batch` test).
    pub batch_classify_warm: Summary,
}

/// Training-throughput measurements: the full classifier bank and the
/// split-search ablation (histogram vs exact — bit-identical forests).
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Full 27-forest bank training (histogram split search).
    pub bank_training: Summary,
    /// One per-type forest fit via the histogram path.
    pub forest_fit_histogram: Summary,
    /// One per-type forest fit via the exact sorted-scan reference.
    pub forest_fit_exact: Summary,
    /// Incrementally adding the 27th type to a 26-type bank (the
    /// paper's "new classifier without relearning" operation).
    pub incremental_add_type: Summary,
}

/// Measures training throughput on the same corpus shape as
/// [`measure`]: `samples` timed trainings of the full bank, plus
/// `samples` single-forest fits through each split-search path (on a
/// real one-vs-rest slice of the fingerprint data, sequential so the
/// per-forest node cost is what's compared).
pub fn measure_training(
    train_runs: u64,
    seed: u64,
    threads: usize,
    samples: usize,
) -> TrainingReport {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let mut config = BankConfig {
        threads,
        ..BankConfig::default()
    };
    config.forest.threads = threads;
    let mut bank_training = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let bank = ClassifierBank::train(&dataset, &config);
        bank_training.push(start.elapsed());
        std::hint::black_box(&bank);
    }
    // One-vs-rest slice: type 0 against everything, the shape every
    // per-type forest trains on.
    let mut binary = Dataset::new(dataset.fixed(0).dimensions());
    for i in 0..dataset.len() {
        binary.push(
            dataset.fixed(i).as_slice(),
            usize::from(dataset.label(i) == 0),
        );
    }
    let forest_config = config.forest.clone().with_threads(1);
    let mut forest_fit_histogram = Vec::with_capacity(samples);
    let mut forest_fit_exact = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(RandomForest::fit(&binary, &forest_config));
        forest_fit_histogram.push(start.elapsed());
        let start = Instant::now();
        std::hint::black_box(RandomForest::fit_exact(&binary, &forest_config));
        forest_fit_exact.push(start.elapsed());
    }
    // Incremental onboarding: train once on 26 types, then time only
    // the `add_type` of the 27th (the bank clone happens off the clock).
    let devices26: Vec<_> = devices.iter().take(devices.len() - 1).cloned().collect();
    let dataset26 = FingerprintDataset::collect(&devices26, train_runs, seed);
    let bank26 = ClassifierBank::train(&dataset26, &config);
    let new_name = devices
        .last()
        .map(|d| d.info.identifier.to_string())
        .unwrap_or_default();
    let mut incremental_add_type = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bank = bank26.clone();
        let start = Instant::now();
        let label = bank.add_type(new_name.clone(), &dataset);
        incremental_add_type.push(start.elapsed());
        std::hint::black_box(label);
    }
    TrainingReport {
        bank_training: Summary::of_durations_ms(&bank_training),
        forest_fit_histogram: Summary::of_durations_ms(&forest_fit_histogram),
        forest_fit_exact: Summary::of_durations_ms(&forest_fit_exact),
        incremental_add_type: Summary::of_durations_ms(&incremental_add_type),
    }
}

/// Measures the Table IV rows on a trained pipeline.
///
/// `iterations` controls how many held-out fingerprints are identified;
/// the paper's statistics come from its full cross-validation, ours from
/// a train/holdout split of fresh testbed campaigns. `threads` is the
/// worker count for training and stage-2 scoring (`0` = auto via
/// `SENTINEL_THREADS`, `1` = sequential); the measured identifications
/// themselves are timed one at a time either way.
pub fn measure(train_runs: u64, iterations: u64, seed: u64, threads: usize) -> TimingReport {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let mut config = IdentifierConfig {
        threads,
        ..IdentifierConfig::default()
    };
    config.bank.threads = threads;
    config.bank.forest.threads = threads;
    let identifier = Identifier::train(&dataset, &config);
    let holdout = Testbed::new(seed ^ 0xdead_beef);

    let mut one_classification = Vec::new();
    let mut one_discrimination = Vec::new();
    let mut fingerprint_extraction = Vec::new();
    let mut all_classifications = Vec::new();
    let mut discrimination_step = Vec::new();
    let mut type_identification = Vec::new();
    let mut edit_distances = 0usize;
    let mut discriminated = 0usize;
    let mut total = 0usize;
    // Holdout fingerprints retained for the batched-classification
    // comparison after the per-item loop.
    let mut batch_probes: Vec<FixedFingerprint> = Vec::new();

    // Warm caches and lazy allocations so the first measured iteration
    // is not an outlier.
    {
        let trace = holdout.setup_run(&devices[0].profile, u64::MAX - 1);
        let full = extract(&trace.packets);
        let fixed = FixedFingerprint::from_fingerprint(&full);
        let _ = identifier.identify(&full, &fixed);
    }

    for run in 0..iterations {
        let device = &devices[(run as usize) % devices.len()];
        let trace = holdout.setup_run(&device.profile, run);

        // Row: fingerprint extraction — timed on the zero-copy wire-scan
        // path the gateway hot path takes (raw frames arrive from the
        // tap; encoding them is capture, not extraction, so it happens
        // outside the timer). Produces fingerprints bit-identical to
        // `extract(&trace.packets)`. The operation is single-digit
        // microseconds, so each sample amortizes a short inner loop to
        // keep one scheduler hiccup from swamping the mean.
        const EXTRACT_REPEATS: u32 = 64;
        let frames: Vec<Vec<u8>> = trace.packets.iter().map(|p| p.encode()).collect();
        let start = Instant::now();
        let mut full = extract_frames(&frames).expect("simulated frames are well-formed");
        let mut fixed = FixedFingerprint::from_fingerprint(&full);
        for _ in 1..EXTRACT_REPEATS {
            full = extract_frames(&frames).expect("simulated frames are well-formed");
            fixed = FixedFingerprint::from_fingerprint(&full);
        }
        fingerprint_extraction.push(start.elapsed() / EXTRACT_REPEATS);

        // Row: one classification (a single per-type forest, via the
        // identifier's packed arena — the path identification takes).
        let start = Instant::now();
        let _ = identifier.accepts(0, &fixed);
        one_classification.push(start.elapsed());

        // Row: all 27 classifications.
        let start = Instant::now();
        let candidates = identifier.classify(&fixed);
        all_classifications.push(start.elapsed());

        // Row: one edit-distance discrimination.
        let reference = dataset.full(0);
        let start = Instant::now();
        let _ = normalized_distance(&full, reference);
        one_discrimination.push(start.elapsed());

        // Rows: discrimination step + full identification.
        let start = Instant::now();
        let id = identifier.identify(&full, &fixed);
        let elapsed = start.elapsed();
        type_identification.push(elapsed);
        total += 1;
        if id.discriminated {
            discriminated += 1;
            edit_distances += id.candidates.len() * 5;
            // The discrimination share is the identification minus the
            // classification stage measured above.
            let classify = all_classifications
                .last()
                .copied()
                .unwrap_or(Duration::ZERO);
            discrimination_step.push(elapsed.saturating_sub(classify));
        }
        let _ = candidates;
        if batch_probes.len() < 64 {
            batch_probes.push(fixed.clone());
        }
    }

    // Batched vs sequential stage-1 classification over one reused
    // 64-fingerprint batch (the streaming runtime's tick shape): same
    // candidates either way; only the arena walk order differs.
    let mut batch_classify_sequential = Vec::new();
    let mut batch_classify_batched = Vec::new();
    let mut batch_classify_warm = Vec::new();
    if !batch_probes.is_empty() {
        let refs: Vec<&FixedFingerprint> = batch_probes.iter().collect();
        const BATCH_REPEATS: usize = 24;
        // Warmed once off the clock, then reused every repeat — the
        // per-shard scratch a streaming gateway keeps across ticks.
        let mut scratch = ClassifyScratch::default();
        let _ = identifier.classify_batch_in(&refs, &mut scratch);
        for _ in 0..BATCH_REPEATS {
            let start = Instant::now();
            let sequential: Vec<Vec<usize>> = refs.iter().map(|f| identifier.classify(f)).collect();
            batch_classify_sequential.push(start.elapsed());
            let start = Instant::now();
            let batched = identifier.classify_batch(&refs);
            batch_classify_batched.push(start.elapsed());
            assert_eq!(sequential, batched, "batched classification diverged");
            let start = Instant::now();
            let warm = identifier.classify_batch_in(&refs, &mut scratch);
            batch_classify_warm.push(start.elapsed());
            assert_eq!(sequential, warm, "warm-scratch classification diverged");
        }
    }

    TimingReport {
        one_classification: Summary::of_durations_ms(&one_classification),
        one_discrimination: Summary::of_durations_ms(&one_discrimination),
        fingerprint_extraction: Summary::of_durations_ms(&fingerprint_extraction),
        all_classifications: Summary::of_durations_ms(&all_classifications),
        discrimination_step: Summary::of_durations_ms(&discrimination_step),
        type_identification: Summary::of_durations_ms(&type_identification),
        mean_edit_distances: if total == 0 {
            0.0
        } else {
            edit_distances as f64 / total as f64
        },
        discrimination_rate: if total == 0 {
            0.0
        } else {
            discriminated as f64 / total as f64
        },
        batch_classify_sequential: Summary::of_durations_ms(&batch_classify_sequential),
        batch_classify_batched: Summary::of_durations_ms(&batch_classify_batched),
        batch_classify_warm: Summary::of_durations_ms(&batch_classify_warm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table_iv() {
        // Small but real measurement: classification must be far cheaper
        // than a full identification with discrimination.
        let report = measure(6, 27, 3, 1);
        assert!(report.one_classification.mean < report.all_classifications.mean * 1.5);
        assert!(report.fingerprint_extraction.mean >= 0.0);
        // Identification includes the classification stage; allow slack
        // for timer noise at the microsecond scale.
        assert!(
            report.type_identification.mean >= report.all_classifications.mean * 0.5,
            "identification {} ms vs classification {} ms",
            report.type_identification.mean,
            report.all_classifications.mean
        );
        assert!(report.discrimination_rate <= 1.0);
    }
}
