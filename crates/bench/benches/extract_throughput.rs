//! Per-packet feature extraction throughput: the legacy full-decode path
//! (`Packet::parse` → `FeatureExtractor::push`) against the zero-copy
//! single-pass wire scan (`FeatureExtractor::push_bytes`, backed by
//! `sentinel_netproto::scan::WireScan`). Both produce bit-identical
//! fingerprints; the scan path is what the streaming runtime and the
//! gateway hot path use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract_frames, FeatureExtractor};
use sentinel_netproto::{Packet, Timestamp};

fn frames_for(name: &str) -> Vec<Vec<u8>> {
    let devices = catalog();
    let testbed = Testbed::new(21);
    let device = devices
        .iter()
        .find(|d| d.info.identifier == name)
        .expect("catalog device");
    let trace = testbed.setup_run(&device.profile, 0);
    trace.packets.iter().map(|p| p.encode()).collect()
}

fn decode_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_decode");
    for name in ["HueSwitch", "Aria", "D-LinkHomeHub"] {
        let frames = frames_for(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &frames, |b, frames| {
            b.iter(|| {
                let mut extractor = FeatureExtractor::with_capacity(frames.len());
                for frame in frames {
                    let packet = Packet::parse(frame, Timestamp::ZERO).expect("well-formed");
                    extractor.push(&packet);
                }
                extractor.finish()
            })
        });
    }
    group.finish();
}

fn wirescan_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_wirescan");
    for name in ["HueSwitch", "Aria", "D-LinkHomeHub"] {
        let frames = frames_for(name);
        group.bench_with_input(BenchmarkId::from_parameter(name), &frames, |b, frames| {
            b.iter(|| extract_frames(frames).expect("well-formed"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = decode_path, wirescan_path
}
criterion_main!(benches);
