//! Minimal `--flag value` argument parsing shared by the reproduction
//! binaries (kept dependency-free on purpose).

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` /
/// `--switch` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process arguments (after the binary name).
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(value) if !value.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(name.to_owned(), value);
                    }
                    _ => out.switches.push(name.to_owned()),
                }
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether `--name` was given without a value.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The value of `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.options.get(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("invalid value for --{name}: {raw:?}")),
        }
    }

    /// The raw string value of `--name`, if present.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_options_switches_and_positionals() {
        let args = parse(&["latency", "--runs", "20", "--quick", "--seed", "7"]);
        assert_eq!(args.positional(), &["latency".to_string()]);
        assert_eq!(args.get("runs", 0u64), 20);
        assert_eq!(args.get("seed", 0u64), 7);
        assert!(args.switch("quick"));
        assert!(!args.switch("verbose"));
        assert_eq!(args.get("missing", 42u32), 42);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_value_panics() {
        let args = parse(&["--runs", "banana"]);
        let _ = args.get("runs", 0u64);
    }
}
