//! The Sect. VI-B evaluation: stratified k-fold cross-validation of the
//! two-stage identification pipeline over the 27-type corpus.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sentinel_core::{FingerprintDataset, Identifier, IdentifierConfig, IdentifyMode};
use sentinel_devicesim::catalog;
use sentinel_ml::crossval::stratified_k_fold;
use sentinel_ml::metrics::ConfusionMatrix;
use sentinel_ml::{parallel, ForestConfig};

/// Label used for the pseudo-class recording "rejected by every
/// classifier" predictions.
pub const UNKNOWN_LABEL: &str = "(unknown)";

/// Configuration of a Fig. 5 / Table III evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Setup runs collected per device-type (paper: 20 → 540
    /// fingerprints).
    pub runs: u64,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Whole-CV repetitions (paper: 10).
    pub repetitions: usize,
    /// Trees per Random Forest.
    pub trees: usize,
    /// Negative-to-positive training ratio (paper: 10).
    pub negative_ratio: usize,
    /// Unique packets in `F'` (paper: 12 → 276 features).
    pub packets: usize,
    /// Reference fingerprints per type for discrimination (paper: 5).
    pub references: usize,
    /// Pipeline variant.
    pub mode: IdentifyMode,
    /// Campaign seed.
    pub seed: u64,
    /// Worker threads over (repetition, fold) work items (`0` = auto
    /// via `SENTINEL_THREADS` / available parallelism, `1` =
    /// sequential). The merged result is identical for every value.
    pub workers: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            runs: 20,
            folds: 10,
            repetitions: 10,
            trees: 100,
            negative_ratio: 10,
            packets: 12,
            references: 5,
            mode: IdentifyMode::TwoStage,
            seed: 42,
            workers: 0,
        }
    }
}

impl EvalConfig {
    /// A reduced configuration for smoke tests and quick runs: fewer
    /// runs, folds, repetitions and trees.
    pub fn quick() -> Self {
        EvalConfig {
            runs: 10,
            folds: 5,
            repetitions: 2,
            trees: 40,
            ..EvalConfig::default()
        }
    }

    fn identifier_config(&self, rep: usize, nested_threads: usize) -> IdentifierConfig {
        let mut config = IdentifierConfig::default();
        config.bank.negative_ratio = self.negative_ratio;
        config.bank.forest = ForestConfig::default()
            .with_trees(self.trees)
            .with_threads(nested_threads);
        config.bank.seed = self.seed ^ (rep as u64) << 32;
        config.bank.threads = nested_threads;
        config.references_per_type = self.references;
        config.mode = self.mode;
        config.seed = self.seed.wrapping_add(rep as u64);
        config.threads = nested_threads;
        config
    }
}

/// The aggregated outcome of an evaluation.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Confusion matrix over the 27 device-types plus the
    /// [`UNKNOWN_LABEL`] pseudo-class column.
    pub confusion: ConfusionMatrix,
    /// Total identifications performed.
    pub total: usize,
    /// How many identifications required edit-distance discrimination
    /// (the paper reports 55 %).
    pub discriminated: usize,
    /// Sum of candidate-set sizes over discriminated identifications
    /// (for the "on average seven edit distance computations" statistic,
    /// references × mean candidates).
    pub candidate_sum: usize,
}

impl EvalResult {
    /// Per-type identification accuracy (recall), the Fig. 5 series.
    pub fn per_type_accuracy(&self) -> Vec<(String, f64)> {
        (0..self.confusion.n_classes() - 1) // exclude the unknown column
            .map(|label| {
                (
                    self.confusion.labels()[label].clone(),
                    self.confusion.recall(label).unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// The paper's "global ratio of correct identification" (macro
    /// recall over real types).
    pub fn global_accuracy(&self) -> f64 {
        let accuracies = self.per_type_accuracy();
        accuracies.iter().map(|(_, a)| a).sum::<f64>() / accuracies.len() as f64
    }

    /// Fraction of identifications that needed discrimination.
    pub fn discrimination_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.discriminated as f64 / self.total as f64
    }

    /// Mean number of candidate types per discriminated identification.
    pub fn mean_candidates(&self) -> f64 {
        if self.discriminated == 0 {
            return 0.0;
        }
        self.candidate_sum as f64 / self.discriminated as f64
    }
}

/// Collects the corpus and runs the full repeated stratified-CV
/// evaluation.
pub fn evaluate(config: &EvalConfig) -> EvalResult {
    let devices = catalog();
    let dataset = FingerprintDataset::collect_with_packets(
        &devices,
        config.runs,
        config.seed,
        config.packets,
    );
    evaluate_on(&dataset, config)
}

/// Runs the evaluation on an existing corpus.
pub fn evaluate_on(dataset: &FingerprintDataset, config: &EvalConfig) -> EvalResult {
    let mut labels: Vec<String> = dataset.type_names().to_vec();
    labels.push(UNKNOWN_LABEL.to_owned());
    let unknown = labels.len() - 1;

    // Enumerate (repetition, fold) work items up front.
    let mut folds = Vec::new();
    for rep in 0..config.repetitions {
        let mut rng = StdRng::seed_from_u64(
            config
                .seed
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(rep as u64),
        );
        for fold in stratified_k_fold(dataset.labels(), config.folds, &mut rng) {
            folds.push((rep, fold));
        }
    }

    let workers = parallel::effective_threads(config.workers).min(folds.len().max(1));
    // With fold-level workers saturating the machine, the nested
    // training/identification sites run sequentially; a lone worker
    // lets them use their own auto parallelism instead.
    let nested_threads = if workers > 1 { 1 } else { 0 };
    let results: Vec<(ConfusionMatrix, usize, usize, usize)> =
        parallel::map_indexed(folds.len(), workers, |i| {
            let (rep, fold) = &folds[i];
            let mut confusion = ConfusionMatrix::new(labels.iter().cloned());
            let mut total = 0;
            let mut discriminated = 0;
            let mut candidate_sum = 0;
            let train = dataset.subset(&fold.train);
            let identifier =
                Identifier::train(&train, &config.identifier_config(*rep, nested_threads));
            for &test_index in &fold.test {
                let id = identifier.identify(dataset.full(test_index), dataset.fixed(test_index));
                let predicted = id.label().unwrap_or(unknown);
                confusion.record(dataset.label(test_index), predicted);
                total += 1;
                if id.discriminated {
                    discriminated += 1;
                    candidate_sum += id.candidates.len();
                }
            }
            (confusion, total, discriminated, candidate_sum)
        });

    let mut confusion = ConfusionMatrix::new(labels.iter().cloned());
    let mut total = 0;
    let mut discriminated = 0;
    let mut candidate_sum = 0;
    for (c, t, d, s) in results {
        confusion.merge(&c);
        total += t;
        discriminated += d;
        candidate_sum += s;
    }
    EvalResult {
        confusion,
        total,
        discriminated,
        candidate_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_evaluation_reproduces_fig5_shape() {
        let config = EvalConfig {
            runs: 8,
            folds: 4,
            repetitions: 1,
            trees: 30,
            workers: 1,
            ..EvalConfig::default()
        };
        let result = evaluate(&config);
        assert_eq!(result.total, 27 * 8);
        let global = result.global_accuracy();
        assert!(
            (0.6..=0.95).contains(&global),
            "global accuracy {global} outside the paper's regime"
        );
        // Distinct devices classify well; family members confuse.
        let accuracy: std::collections::HashMap<String, f64> =
            result.per_type_accuracy().into_iter().collect();
        assert!(accuracy["HueBridge"] > 0.8, "{:?}", accuracy["HueBridge"]);
        assert!(
            accuracy["TP-LinkPlugHS110"] < 0.9,
            "identical twins should confuse: {:?}",
            accuracy["TP-LinkPlugHS110"]
        );
    }
}
