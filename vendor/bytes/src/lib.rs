//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-clonable immutable byte buffer backed by
//! `Arc<[u8]>` plus a view window; [`BytesMut`] is a growable builder
//! that freezes into `Bytes`; [`BufMut`] provides the big-endian `put_*`
//! writers the packet encoders use. [`Bytes::slice_ref`] gives zero-copy
//! sub-slicing: the returned buffer shares the backing allocation.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous byte buffer.
///
/// Equality, ordering and hashing are by *content* (the viewed window),
/// so two buffers over different allocations compare equal when their
/// bytes do — required because [`Bytes::slice_ref`] views share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            offset: 0,
            len: 0,
        }
    }

    fn whole(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Bytes {
            data,
            offset: 0,
            len,
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::whole(Arc::from(data))
    }

    /// Returns a buffer viewing `subset` — which must lie inside this
    /// buffer — **without copying**: the view shares the backing
    /// allocation, like the real crate's `slice_ref`.
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not a sub-slice of `self` (empty subsets
    /// are always accepted and yield an empty buffer).
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub - base + subset.len() <= self.len,
            "subset is not contained in this buffer"
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + (sub - base),
            len: subset.len(),
        }
    }

    /// Creates a buffer from a static slice. (This stand-in copies; the
    /// real crate borrows. Semantics are identical, only allocation
    /// differs.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_ref() {
            for c in std::ascii::escape_default(byte) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::whole(Arc::from(data.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian byte sink used by the packet encoders.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, value: i8) {
        self.put_slice(&[value as u8]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

#[cfg(feature = "serde")]
impl serde_impl::Serialize for Bytes {
    fn to_value(&self) -> serde_impl::Value {
        <[u8] as serde_impl::Serialize>::to_value(self.as_ref())
    }
}

#[cfg(feature = "serde")]
impl serde_impl::Deserialize for Bytes {
    fn from_value(value: &serde_impl::Value) -> Result<Self, serde_impl::Error> {
        <Vec<u8> as serde_impl::Deserialize>::from_value(value).map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_freezes_to_equal_bytes() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x0102);
        buf.put_u32(0x03040506);
        buf.put_u64(0x0708090A0B0C0D0E);
        buf.put_i8(-1);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(
            &frozen[..],
            &[
                0xAB, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D,
                0x0E, 0xFF, b'x', b'y'
            ]
        );
        assert_eq!(frozen.len(), 18);
        let cloned = frozen.clone();
        assert_eq!(cloned, frozen);
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"abc").to_vec(), b"abc");
        assert_eq!(Bytes::from_static(b"xyz"), Bytes::from(b"xyz".to_vec()));
    }

    #[test]
    fn slice_ref_shares_the_backing_allocation() {
        let whole = Bytes::copy_from_slice(b"abcdefgh");
        let view = whole.slice_ref(&whole[2..6]);
        assert_eq!(&view[..], b"cdef");
        assert_eq!(Arc::strong_count(&whole.data), 2, "no copy was made");
        // A view of a view still points at the original allocation.
        let inner = view.slice_ref(&view[1..3]);
        assert_eq!(&inner[..], b"de");
        assert_eq!(Arc::strong_count(&whole.data), 3);
        // Equality is by content, not identity.
        assert_eq!(inner, Bytes::copy_from_slice(b"de"));
        assert!(whole.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn slice_ref_rejects_foreign_slices() {
        let whole = Bytes::copy_from_slice(b"abcdefgh");
        let other = [1u8; 4];
        let _ = whole.slice_ref(&other);
    }

    #[test]
    fn vec_bufmut() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u16(0xBEEF);
        assert_eq!(v, vec![0xBE, 0xEF]);
    }
}
