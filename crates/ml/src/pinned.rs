//! The v2 pinned RNG contract: cheap, keyed, order-independent draws.
//!
//! The v1 contract (a shared seeded `StdRng` advanced once per use site)
//! makes every consumer's stream depend on *how many* draws happened
//! before it — good enough for batch training, fatal for a sharded
//! streaming runtime whose assessments must not care which worker (or in
//! which order) serves them. [`PinnedRng`] replaces that with a generator
//! constructed *per decision* from a key: the stream is a pure function
//! of `(seed, key)`, so two completions keyed `(seq, mac)` draw the same
//! values no matter how work is scheduled around them.
//!
//! Every output of this module is part of a **pinned contract**: the
//! exact mixing constants, the widening-multiply range reduction and the
//! partial Fisher–Yates sampling order are all frozen by a checked-in
//! reference stream (`tests/data/pinned_rng_v2.txt`) plus property tests
//! (`tests/pinned_rng.rs`). Changing any of them is a contract break and
//! must re-pin the reference file deliberately.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood 2014): one 64-bit
//! add and three xor-multiply rounds per draw — orders of magnitude
//! cheaper than seeding a cryptographic `StdRng` per decision, with
//! well-studied equidistribution for the stream lengths used here (a
//! handful of draws per decision).

/// The SplitMix64 golden-gamma increment.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a bijective avalanche mix of one word.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic generator whose stream is a pure function of its
/// construction key (see the module docs for the pinned contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinnedRng {
    state: u64,
}

impl PinnedRng {
    /// Derives a generator from a seed and a two-word key.
    ///
    /// Pinned derivation: the seed and each key word are absorbed by one
    /// finalizer round each (`mix(mix(mix(seed ^ GAMMA) ^ hi) ^ lo)`), so
    /// any single-bit change in any input avalanches through the whole
    /// stream. Keys are *independent*, not hierarchical: there is no way
    /// to advance from key `(a, b)` to key `(a, b + 1)`.
    pub fn from_key(seed: u64, key_hi: u64, key_lo: u64) -> Self {
        let mut state = mix(seed ^ GAMMA);
        state = mix(state ^ key_hi);
        state = mix(state ^ key_lo);
        PinnedRng { state }
    }

    /// The next 64-bit draw (SplitMix64: add gamma, finalize).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// A draw in `0..n` via the widening-multiply range reduction
    /// (`(next_u64 × n) >> 64`). The ~2⁻⁶⁴·n selection bias is
    /// irrelevant at the pool sizes used here (tens of references, a
    /// couple of tied candidates) and buying exactness with rejection
    /// sampling would make the number of draws data-dependent — which
    /// the pinned-stream contract forbids.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A draw in `0..n` as an index.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Draws `k` distinct elements of `pool` without replacement (all of
    /// `pool`, in draw order, if `k >= pool.len()`).
    ///
    /// Pinned algorithm: a *partial* Fisher–Yates shuffle — slot `i`
    /// swaps with `i + index(len - i)` for `i in 0..k` and the first `k`
    /// slots are returned. Exactly `k` draws are consumed (the cheaper
    /// deterministic draw ROADMAP item 5b asks for), versus the v1
    /// contract's full shuffle of the whole pool.
    pub fn sample_k<T: Copy>(&mut self, pool: &[T], k: usize) -> Vec<T> {
        let mut items = pool.to_vec();
        let k = k.min(items.len());
        for i in 0..k {
            self.sample_step(&mut items, i);
        }
        items.truncate(k);
        items
    }

    /// One step of the pinned partial Fisher–Yates, in place: swaps slot
    /// `i` with `i + index(len - i)` and returns the element now at slot
    /// `i`, consuming exactly one draw.
    ///
    /// Iterating `i in 0..k` replays [`PinnedRng::sample_k`] draw for
    /// draw — this is the lazy form for consumers that inspect one
    /// candidate at a time and decide *as they go* how many slots to
    /// fill (training's per-node feature subsampling, where features
    /// found constant must not count against the candidate budget).
    ///
    /// # Panics
    ///
    /// Panics if `i >= items.len()`.
    #[inline]
    pub fn sample_step<T: Copy>(&mut self, items: &mut [T], i: usize) -> T {
        let j = i + self.index(items.len() - i);
        items.swap(i, j);
        items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = PinnedRng::from_key(7, 1, 2);
        let mut b = PinnedRng::from_key(7, 1, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn any_key_word_changes_the_stream() {
        let base = PinnedRng::from_key(7, 1, 2);
        for other in [
            PinnedRng::from_key(8, 1, 2),
            PinnedRng::from_key(7, 0, 2),
            PinnedRng::from_key(7, 1, 3),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = PinnedRng::from_key(3, 4, 5);
        for n in 1..200u64 {
            assert!(rng.next_below(n) < n);
        }
    }

    #[test]
    fn sample_k_is_distinct_and_from_the_pool() {
        let pool: Vec<usize> = (0..40).collect();
        let mut rng = PinnedRng::from_key(1, 2, 3);
        let sample = rng.sample_k(&pool, 5);
        assert_eq!(sample.len(), 5);
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(distinct.len(), 5);
        assert!(sample.iter().all(|i| pool.contains(i)));
    }

    #[test]
    fn sample_k_caps_at_pool_size() {
        let pool = [10, 20, 30];
        let mut rng = PinnedRng::from_key(1, 2, 3);
        let mut sample = rng.sample_k(&pool, 9);
        sample.sort_unstable();
        assert_eq!(sample, vec![10, 20, 30]);
    }

    #[test]
    fn sample_k_consumes_exactly_k_draws() {
        let pool: Vec<usize> = (0..32).collect();
        let mut sampled = PinnedRng::from_key(9, 9, 9);
        sampled.sample_k(&pool, 4);
        let mut counted = PinnedRng::from_key(9, 9, 9);
        for _ in 0..4 {
            counted.next_u64();
        }
        assert_eq!(sampled, counted, "k draws, no more");
    }
}
