//! Deterministic, domain-separated content hashing.
//!
//! The verdict cache (`sentinel-core`) and any other content-addressed
//! store need a hash that is a pure function of the hashed words — no
//! `RandomState`, no platform dependence — and that cannot collide
//! *across* uses by accident: hashing a fingerprint's symbols for a
//! model stamp and hashing its `F'` bits for a cache shard must live in
//! different hash families. Both properties come from keyed FNV-1a:
//! the same primitive the testbed and the shard router already use,
//! seeded with a caller-chosen domain tag so every use site gets its
//! own stream.
//!
//! These hashes only ever *route* (pick a shard, stamp a model
//! identity for diagnostics); correctness-critical lookups must still
//! compare full keys for exact equality, so a collision can cost a
//! cache slot, never an answer.

/// FNV-1a over a stream of `u64` words, domain-separated by `domain`.
///
/// Equal `(domain, words)` always hash equal; distinct domains send
/// the same words into unrelated hash streams. The word order matters,
/// which is exactly what set-of-sequences hashing wants: callers hash
/// lengths alongside elements to keep `["ab","c"]` and `["a","bc"]`
/// apart.
pub fn keyed_hash(domain: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

/// Word-at-a-time variant of [`keyed_hash`] for long word streams
/// (e.g. a 276-word `F'` bit pattern): one xor-multiply per word
/// instead of eight. Weaker avalanche than the byte stream, which is
/// fine for its one job — routing exact-equality keys to shards and
/// buckets, where a rare collision costs a chain walk, never an
/// answer.
pub fn keyed_hash_words(domain: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ domain.wrapping_mul(0x100_0000_01b3);
    for word in words {
        hash ^= word;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Hashes a *set* of interned symbol sequences (each a `&[u32]` slice)
/// under `domain`, framing every sequence with its length so sequence
/// boundaries are part of the hash.
///
/// This is how a trained model's reference corpus is stamped: the
/// stamp changes whenever any reference fingerprint's symbols change,
/// a sequence is added or removed, or the grouping shifts.
pub fn symbol_set_hash<'a>(
    domain: u64,
    sequences: impl IntoIterator<Item = &'a [u32]>,
) -> u64 {
    let mut hash = keyed_hash(domain, []);
    for sequence in sequences {
        hash = keyed_hash(
            hash,
            std::iter::once(sequence.len() as u64)
                .chain(sequence.iter().map(|&symbol| u64::from(symbol))),
        );
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_separate_identical_words() {
        let words = [1u64, 2, 3];
        assert_ne!(keyed_hash(7, words), keyed_hash(8, words));
        assert_eq!(keyed_hash(7, words), keyed_hash(7, words));
    }

    #[test]
    fn word_boundaries_are_part_of_the_hash() {
        let ab_c: [&[u32]; 2] = [&[10, 11], &[12]];
        let a_bc: [&[u32]; 2] = [&[10], &[11, 12]];
        assert_ne!(symbol_set_hash(1, ab_c), symbol_set_hash(1, a_bc));
        assert_eq!(symbol_set_hash(1, ab_c), symbol_set_hash(1, ab_c));
    }

    #[test]
    fn empty_input_is_still_domain_keyed() {
        assert_ne!(keyed_hash(1, []), keyed_hash(2, []));
        assert_ne!(keyed_hash_words(1, []), keyed_hash_words(2, []));
    }

    #[test]
    fn word_hash_is_stable_and_word_sensitive() {
        let a = keyed_hash_words(3, [5u64, 6, 7]);
        assert_eq!(a, keyed_hash_words(3, [5u64, 6, 7]));
        assert_ne!(a, keyed_hash_words(3, [5u64, 6, 8]));
        assert_ne!(a, keyed_hash_words(4, [5u64, 6, 7]));
    }
}
