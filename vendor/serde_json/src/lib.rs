//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde::Value` tree as JSON text and parses it
//! back with a small recursive-descent parser. Floats are written with
//! Rust's shortest-roundtrip formatting so numeric round-trips are exact.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

pub use serde::Value as JsonValue;

/// Error produced while reading or writing JSON.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::new(err)
    }
}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err)
    }
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: ?Sized + Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(text)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` is shortest-roundtrip and always keeps a decimal
                // point or exponent, so the value re-parses as a float.
                out.push_str(&format!("{v:?}"));
            } else {
                // JSON has no NaN/inf; null matches serde_json's lossy
                // behaviour for non-finite floats.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|_| Value::Null),
            Some(b't') => self.expect_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(Error::new)?;
        let code = u32::from_str_radix(hex, 16).map_err(Error::new)?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::new)
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-9i64).unwrap()).unwrap(), -9);
        assert_eq!(
            from_str::<f64>(&to_string(&0.30000000000000004f64).unwrap()).unwrap(),
            0.30000000000000004
        );
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(
            from_str::<Option<u8>>(&to_string(&None::<u8>).unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"back\\slash\ttab\u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn nested_containers_roundtrip() {
        let data = vec![vec![1u32, 2], vec![], vec![3]];
        let json = to_string(&data).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), data);
    }

    #[test]
    fn whitespace_tolerated() {
        let parsed: Vec<u8> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(parsed, vec![1, 2, 3]);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut buffer = Vec::new();
        to_writer(&mut buffer, &vec![1.5f64, -2.25]).unwrap();
        let back: Vec<f64> = from_reader(buffer.as_slice()).unwrap();
        assert_eq!(back, vec![1.5, -2.25]);
    }
}
