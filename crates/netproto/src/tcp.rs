//! TCP segment headers.

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of a TCP header without options.
pub const MIN_HEADER_LEN: usize = 20;

/// TCP control flags.
///
/// A hand-rolled flag set (rather than a `bitflags` dependency) keeping the
/// same typesafe-or semantics:
///
/// ```
/// use sentinel_netproto::tcp::TcpFlags;
///
/// let synack = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(synack.contains(TcpFlags::SYN));
/// assert!(!synack.contains(TcpFlags::FIN));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Constructs from the raw flag byte.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// The raw flag byte.
    pub const fn bits(&self) -> u8 {
        self.0
    }

    /// Returns `true` if all flags in `other` are set in `self`.
    pub const fn contains(&self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// A TCP header (options preserved as raw bytes, padded to 32 bits).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Raw option bytes (padded with NOPs to 32 bits at encode time).
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// Creates a header with the given ports and flags.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 65535,
            options: Vec::new(),
        }
    }

    /// A SYN segment with a typical MSS option, as the first packet of a
    /// device's TCP connection to its cloud endpoint.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        let mut hdr = TcpHeader::new(src_port, dst_port, TcpFlags::SYN);
        hdr.seq = seq;
        hdr.options = vec![0x02, 0x04, 0x05, 0xb4]; // MSS 1460
        hdr
    }

    /// Length of the encoded header.
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len().div_ceil(4) * 4
    }

    /// Appends the header bytes to `buf` (checksum left zero; the
    /// simulation does not verify transport checksums).
    pub fn encode(&self, buf: &mut impl BufMut) {
        let header_len = self.header_len();
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(((header_len / 4) as u8) << 4);
        buf.put_u8(self.flags.bits());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum (not modeled)
        buf.put_u16(0); // urgent pointer
        buf.put_slice(&self.options);
        for _ in self.options.len()..(header_len - MIN_HEADER_LEN) {
            buf.put_u8(0x01); // NOP padding
        }
    }

    /// Parses a header, returning it and the segment payload.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] or [`ParseError::Invalid`] on
    /// malformed input.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if bytes.len() < MIN_HEADER_LEN {
            return Err(ParseError::truncated("tcp", MIN_HEADER_LEN, bytes.len()));
        }
        let data_offset = (bytes[12] >> 4) as usize * 4;
        if data_offset < MIN_HEADER_LEN {
            return Err(ParseError::invalid(
                "tcp",
                format!("data offset {data_offset}"),
            ));
        }
        if bytes.len() < data_offset {
            return Err(ParseError::truncated("tcp", data_offset, bytes.len()));
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
                dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
                seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
                ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
                flags: TcpFlags::from_bits(bytes[13]),
                window: u16::from_be_bytes([bytes[14], bytes[15]]),
                options: bytes[MIN_HEADER_LEN..data_offset].to_vec(),
            },
            &bytes[data_offset..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_options() {
        let hdr = TcpHeader::syn(49152, 443, 1000);
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        buf.extend_from_slice(b"hi");
        let (parsed, payload) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"hi");
    }

    #[test]
    fn options_padded_to_word_boundary() {
        let mut hdr = TcpHeader::new(1, 2, TcpFlags::ACK);
        hdr.options = vec![0x01];
        assert_eq!(hdr.header_len(), 24);
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), 24);
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = Vec::new();
        TcpHeader::new(1, 2, TcpFlags::SYN).encode(&mut buf);
        buf[12] = 0x10; // data offset 4 bytes < 20
        assert!(TcpHeader::parse(&buf).is_err());
    }

    #[test]
    fn truncated_rejected() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
    }
}
