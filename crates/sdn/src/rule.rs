//! Enforcement rules (Fig. 2) and isolation levels (Fig. 3).

use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use sentinel_netproto::MacAddr;

/// The isolation level assigned to a device after vulnerability
/// assessment (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// Untrusted overlay only; no Internet access. Assigned to unknown
    /// device-types.
    Strict,
    /// Untrusted overlay plus a whitelist of remote endpoints (the
    /// vendor's cloud service). Assigned to types with known
    /// vulnerabilities.
    Restricted,
    /// Trusted overlay and unrestricted Internet access. Assigned to
    /// types with no known vulnerabilities.
    Trusted,
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IsolationLevel::Strict => "strict",
            IsolationLevel::Restricted => "restricted",
            IsolationLevel::Trusted => "trusted",
        })
    }
}

/// A per-device enforcement rule, keyed by the device's MAC address
/// (Fig. 2). For [`IsolationLevel::Restricted`] devices the rule carries
/// the permitted remote endpoints supplied by the IoT Security Service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnforcementRule {
    /// The device the rule applies to.
    pub mac: MacAddr,
    /// Assigned isolation level.
    pub level: IsolationLevel,
    /// Remote endpoints a restricted device may contact.
    pub permitted_endpoints: Vec<IpAddr>,
    /// Optional flow-level refinement (Sect. III-C.2 / V: filtering "can
    /// be targeted at particular protocols or endpoints", "up to the
    /// level of individual flows"): when set, a restricted device may
    /// only contact its permitted endpoints on these destination ports.
    pub permitted_remote_ports: Option<Vec<u16>>,
}

impl EnforcementRule {
    /// A rule placing `mac` under strict isolation.
    pub fn strict(mac: MacAddr) -> Self {
        EnforcementRule {
            mac,
            level: IsolationLevel::Strict,
            permitted_endpoints: Vec::new(),
            permitted_remote_ports: None,
        }
    }

    /// A rule placing `mac` under restricted isolation with the given
    /// endpoint whitelist.
    pub fn restricted(mac: MacAddr, endpoints: impl IntoIterator<Item = IpAddr>) -> Self {
        EnforcementRule {
            mac,
            level: IsolationLevel::Restricted,
            permitted_endpoints: endpoints.into_iter().collect(),
            permitted_remote_ports: None,
        }
    }

    /// Refines the rule to specific remote ports (builder style) — e.g.
    /// "this camera may only speak TLS (443) to its cloud".
    #[must_use]
    pub fn with_port_filter(mut self, ports: impl IntoIterator<Item = u16>) -> Self {
        self.permitted_remote_ports = Some(ports.into_iter().collect());
        self
    }

    /// Whether this rule permits a remote flow to the given destination
    /// port (always true when no port filter is set, or for levels where
    /// the endpoint decision alone governs).
    pub fn permits_remote_port(&self, port: Option<u16>) -> bool {
        match (&self.permitted_remote_ports, port) {
            (None, _) => true,
            (Some(ports), Some(p)) => ports.contains(&p),
            (Some(_), None) => false,
        }
    }

    /// A rule placing `mac` in the trusted overlay.
    pub fn trusted(mac: MacAddr) -> Self {
        EnforcementRule {
            mac,
            level: IsolationLevel::Trusted,
            permitted_endpoints: Vec::new(),
            permitted_remote_ports: None,
        }
    }

    /// Whether this rule permits contacting the remote address `ip`.
    pub fn permits_remote(&self, ip: IpAddr) -> bool {
        match self.level {
            IsolationLevel::Strict => false,
            IsolationLevel::Restricted => self.permitted_endpoints.contains(&ip),
            IsolationLevel::Trusted => true,
        }
    }

    /// The rule's storage hash, used as its identity in the enforcement
    /// rule cache (the `hash` field of Fig. 2). Stable across runs.
    ///
    /// Every variable-length field is framed with a domain-separator tag
    /// and an element count before its bytes, so two rules can only hash
    /// alike if they are field-for-field identical — endpoint octets can
    /// never masquerade as port bytes (or vice versa), and an empty port
    /// filter hashes differently from an absent one.
    pub fn hash_value(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        };
        let eat_u32 = |v: u32, eat: &mut dyn FnMut(u8)| {
            v.to_be_bytes().into_iter().for_each(eat);
        };
        eat(0x01); // field: mac
        for byte in self.mac.octets() {
            eat(byte);
        }
        eat(0x02); // field: level
        eat(match self.level {
            IsolationLevel::Strict => 0,
            IsolationLevel::Restricted => 1,
            IsolationLevel::Trusted => 2,
        });
        eat(0x03); // field: endpoints
        eat_u32(self.permitted_endpoints.len() as u32, &mut eat);
        for endpoint in &self.permitted_endpoints {
            match endpoint {
                IpAddr::V4(v4) => {
                    eat(0x04); // element: v4 address
                    v4.octets().into_iter().for_each(&mut eat);
                }
                IpAddr::V6(v6) => {
                    eat(0x06); // element: v6 address
                    v6.octets().into_iter().for_each(&mut eat);
                }
            }
        }
        eat(0x05); // field: port filter
        match &self.permitted_remote_ports {
            None => eat(0x00),
            Some(ports) => {
                eat(0x01);
                eat_u32(ports.len() as u32, &mut eat);
                for port in ports {
                    port.to_be_bytes().into_iter().for_each(&mut eat);
                }
            }
        }
        hash
    }

    /// Approximate in-memory footprint of the rule in bytes, used by the
    /// Fig. 6c memory accounting.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.permitted_endpoints.len() * std::mem::size_of::<IpAddr>()
            + self
                .permitted_remote_ports
                .as_ref()
                .map_or(0, |p| p.len() * std::mem::size_of::<u16>())
    }
}

impl fmt::Display for EnforcementRule {
    /// Renders in the style of the paper's Fig. 2 sample rule.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device {} isolation {}", self.mac, self.level)?;
        if !self.permitted_endpoints.is_empty() {
            write!(f, " permitted [")?;
            for (i, ip) in self.permitted_endpoints.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{ip}")?;
            }
            write!(f, "]")?;
        }
        write!(f, " hash {:#018x}", self.hash_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> MacAddr {
        "13-73-74-7E-A9-C2".parse().unwrap()
    }

    #[test]
    fn strict_permits_nothing_remote() {
        let rule = EnforcementRule::strict(mac());
        assert!(!rule.permits_remote("52.0.0.1".parse().unwrap()));
    }

    #[test]
    fn restricted_permits_only_whitelist() {
        let cloud: IpAddr = "52.29.100.7".parse().unwrap();
        let rule = EnforcementRule::restricted(mac(), [cloud]);
        assert!(rule.permits_remote(cloud));
        assert!(!rule.permits_remote("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn trusted_permits_everything_remote() {
        let rule = EnforcementRule::trusted(mac());
        assert!(rule.permits_remote("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let cloud: IpAddr = "52.29.100.7".parse().unwrap();
        let a = EnforcementRule::restricted(mac(), [cloud]);
        let b = EnforcementRule::restricted(mac(), [cloud]);
        assert_eq!(a.hash_value(), b.hash_value());
        let c = EnforcementRule::strict(mac());
        assert_ne!(a.hash_value(), c.hash_value());
    }

    #[test]
    fn hash_separates_endpoint_and_port_fields() {
        // Regression: with boundary-free FNV, the endpoint octets
        // [1, 2, 3, 4] of rule `a` feed the hash exactly like the port
        // big-endian bytes [0x01, 0x02] ++ [0x03, 0x04] of rule `b`,
        // so two rules with different identities (Fig. 2) collide.
        let a = EnforcementRule::restricted(mac(), ["1.2.3.4".parse::<IpAddr>().unwrap()]);
        let b = EnforcementRule::restricted(mac(), []).with_port_filter([0x0102, 0x0304]);
        assert_ne!(a, b);
        assert_ne!(
            a.hash_value(),
            b.hash_value(),
            "field boundaries must be hashed"
        );
    }

    #[test]
    fn hash_separates_empty_port_filter_from_none() {
        // `Some(vec![])` ("no remote flows permitted") and `None` ("no
        // port refinement") are different policies and need different
        // identities.
        let base = EnforcementRule::restricted(mac(), ["52.29.100.7".parse::<IpAddr>().unwrap()]);
        let filtered = base.clone().with_port_filter([]);
        assert_ne!(base, filtered);
        assert_ne!(base.hash_value(), filtered.hash_value());
    }

    #[test]
    fn display_mirrors_fig2() {
        let rule = EnforcementRule::restricted(mac(), ["52.29.100.7".parse().unwrap()]);
        let rendered = rule.to_string();
        assert!(rendered.contains("13-73-74-7E-A9-C2"));
        assert!(rendered.contains("restricted"));
        assert!(rendered.contains("52.29.100.7"));
        assert!(rendered.contains("hash 0x"));
    }

    #[test]
    fn port_filter_refines_restricted_rule() {
        let cloud: IpAddr = "52.29.100.7".parse().unwrap();
        let rule = EnforcementRule::restricted(mac(), [cloud]).with_port_filter([443, 8883]);
        assert!(rule.permits_remote_port(Some(443)));
        assert!(rule.permits_remote_port(Some(8883)));
        assert!(!rule.permits_remote_port(Some(23)));
        assert!(
            !rule.permits_remote_port(None),
            "portless flows blocked under a port filter"
        );
        let unfiltered = EnforcementRule::restricted(mac(), [cloud]);
        assert!(unfiltered.permits_remote_port(Some(23)));
        assert!(unfiltered.permits_remote_port(None));
        assert_ne!(rule.hash_value(), unfiltered.hash_value());
    }

    #[test]
    fn isolation_level_display() {
        assert_eq!(IsolationLevel::Strict.to_string(), "strict");
        assert_eq!(IsolationLevel::Trusted.to_string(), "trusted");
    }
}
