//! The variable-length fingerprint `F` (Eq. 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::FeatureVector;

/// A device fingerprint: the ordered sequence of per-packet feature
/// vectors captured during a device's setup phase (the paper's `23 × n`
/// matrix `F`, stored column-major — one [`FeatureVector`] per packet).
///
/// The constructor removes *consecutive* duplicate vectors, as specified
/// in Sect. IV-A ("consecutive identical packets from our feature set
/// perspective are discarded from F").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Fingerprint {
    vectors: Vec<FeatureVector>,
}

impl Fingerprint {
    /// Builds a fingerprint from per-packet feature vectors, discarding
    /// consecutive duplicates.
    pub fn new(vectors: impl IntoIterator<Item = FeatureVector>) -> Self {
        Self::from_vec(vectors.into_iter().collect())
    }

    /// Builds a fingerprint from an owned vector of per-packet features,
    /// deduplicating consecutive duplicates in place without copying the
    /// surviving vectors into a fresh allocation.
    pub fn from_vec(mut vectors: Vec<FeatureVector>) -> Self {
        vectors.dedup();
        Fingerprint { vectors }
    }

    /// The number of packet columns `n`.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the fingerprint has no packets.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The packet feature vectors in capture order.
    pub fn vectors(&self) -> &[FeatureVector] {
        &self.vectors
    }

    /// Iterates over the packet feature vectors.
    pub fn iter(&self) -> std::slice::Iter<'_, FeatureVector> {
        self.vectors.iter()
    }

    /// The first `limit` *unique* vectors in first-occurrence order (used
    /// to build the fixed-size fingerprint `F'`).
    pub fn unique_vectors(&self, limit: usize) -> Vec<&FeatureVector> {
        let mut unique: Vec<&FeatureVector> = Vec::with_capacity(limit);
        for vector in &self.vectors {
            if unique.len() == limit {
                break;
            }
            if !unique.contains(&vector) {
                unique.push(vector);
            }
        }
        unique
    }
}

impl FromIterator<FeatureVector> for Fingerprint {
    fn from_iter<I: IntoIterator<Item = FeatureVector>>(iter: I) -> Self {
        Fingerprint::new(iter)
    }
}

impl<'a> IntoIterator for &'a Fingerprint {
    type Item = &'a FeatureVector;
    type IntoIter = std::slice::Iter<'a, FeatureVector>;

    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_netproto::{MacAddr, Packet};

    fn vector(counter: u32) -> FeatureVector {
        FeatureVector::from_packet(&Packet::dhcp_discover(MacAddr::ZERO, 1, 0), counter)
    }

    #[test]
    fn consecutive_duplicates_removed() {
        let fp = Fingerprint::new([vector(1), vector(1), vector(2), vector(2), vector(1)]);
        assert_eq!(fp.len(), 3, "AABBА -> ABA");
    }

    #[test]
    fn non_consecutive_duplicates_kept() {
        let fp = Fingerprint::new([vector(1), vector(2), vector(1)]);
        assert_eq!(fp.len(), 3);
    }

    #[test]
    fn unique_vectors_first_occurrence_order() {
        let fp = Fingerprint::new([vector(2), vector(1), vector(2), vector(3)]);
        let unique = fp.unique_vectors(12);
        assert_eq!(unique.len(), 3);
        assert_eq!(unique[0].dst_ip_counter, 2);
        assert_eq!(unique[1].dst_ip_counter, 1);
        assert_eq!(unique[2].dst_ip_counter, 3);
    }

    #[test]
    fn unique_vectors_respects_limit() {
        let fp: Fingerprint = (1..=20).map(vector).collect();
        assert_eq!(fp.unique_vectors(12).len(), 12);
    }

    #[test]
    fn empty_fingerprint() {
        let fp = Fingerprint::default();
        assert!(fp.is_empty());
        assert!(fp.unique_vectors(12).is_empty());
    }
}
