//! Quickstart: train the IoT Security Service on the device catalog,
//! onboard one new device through the Security Gateway, and print the
//! verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::prelude::*;

fn main() {
    // 1. Collect the training corpus: 27 device-types x 20 setup runs,
    //    exactly the paper's 540-fingerprint dataset (Sect. VI-A).
    let devices = catalog();
    println!(
        "collecting 20 setup runs for each of {} device-types…",
        devices.len()
    );
    let dataset = FingerprintDataset::collect(&devices, 20, 42);

    // 2. Train the IoTSSP: one Random Forest per device-type plus the
    //    edit-distance discrimination references (Sect. IV-B).
    println!("training {} per-type classifiers…", dataset.n_types());
    let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());

    // 3. A user buys a Philips Hue Bridge and plugs it in. The Security
    //    Gateway watches its setup traffic.
    let mut gateway = SecurityGateway::new(service);
    let new_device = Testbed::new(2026).setup_run(&devices[4].profile, 0);
    println!(
        "new device {} started its setup procedure ({} packets)…",
        new_device.mac,
        new_device.packets.len()
    );
    for packet in &new_device.packets {
        gateway.observe(packet);
    }

    // 4. Setup over: fingerprint, identify, assess, enforce.
    let report = gateway
        .finalize(new_device.mac)
        .expect("device was monitored");
    println!("\n{report}");
    println!(
        "enforced isolation level: {}",
        gateway.enforcement().level_of(new_device.mac)
    );
}
