//! Address Resolution Protocol (RFC 826) over Ethernet/IPv4.
//!
//! ARP probes and gratuitous announcements are among the first packets an
//! IoT device sends when it joins a network, making ARP one of the two
//! link-layer features in the paper's Table I.

use std::net::Ipv4Addr;

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::{MacAddr, ParseError};

/// Wire length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArpOp {
    /// Who-has request (opcode 1).
    Request,
    /// Is-at reply (opcode 2).
    Reply,
    /// Any other opcode.
    Other(u16),
}

impl ArpOp {
    /// The raw 16-bit opcode.
    pub fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(v) => v,
        }
    }

    /// Classifies a raw opcode.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            v => ArpOp::Other(v),
        }
    }
}

/// An ARP packet for IPv4 over Ethernet.
///
/// ```
/// use sentinel_netproto::arp::{ArpOp, ArpPacket};
/// use sentinel_netproto::MacAddr;
///
/// let probe = ArpPacket::probe(MacAddr::new([1, 2, 3, 4, 5, 6]), "192.168.0.17".parse().unwrap());
/// assert_eq!(probe.op, ArpOp::Request);
/// assert!(probe.sender_ip.is_unspecified());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArpPacket {
    /// Operation (request/reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// An ARP probe (RFC 5227): request with an all-zero sender IP, used by
    /// devices to check whether their DHCP-offered address is free.
    pub fn probe(sender_mac: MacAddr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip: Ipv4Addr::UNSPECIFIED,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// A gratuitous ARP announcement of `ip` by `mac`.
    pub fn announcement(mac: MacAddr, ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: MacAddr::ZERO,
            target_ip: ip,
        }
    }

    /// A who-has request from `sender` for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Appends the 28 packet bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16(1); // htype: Ethernet
        buf.put_u16(0x0800); // ptype: IPv4
        buf.put_u8(6); // hlen
        buf.put_u8(4); // plen
        buf.put_u16(self.op.to_u16());
        buf.put_slice(&self.sender_mac.octets());
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.octets());
        buf.put_slice(&self.target_ip.octets());
    }

    /// Parses an Ethernet/IPv4 ARP packet.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on short input and
    /// [`ParseError::Invalid`] if the hardware/protocol types are not
    /// Ethernet/IPv4.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < PACKET_LEN {
            return Err(ParseError::truncated("arp", PACKET_LEN, bytes.len()));
        }
        let htype = u16::from_be_bytes([bytes[0], bytes[1]]);
        let ptype = u16::from_be_bytes([bytes[2], bytes[3]]);
        if htype != 1 || ptype != 0x0800 || bytes[4] != 6 || bytes[5] != 4 {
            return Err(ParseError::invalid(
                "arp",
                format!("unsupported htype/ptype {htype}/{ptype:#06x}"),
            ));
        }
        let op = ArpOp::from_u16(u16::from_be_bytes([bytes[6], bytes[7]]));
        let sender_mac = MacAddr::new(bytes[8..14].try_into().expect("slice of 6"));
        let sender_ip = Ipv4Addr::new(bytes[14], bytes[15], bytes[16], bytes[17]);
        let target_mac = MacAddr::new(bytes[18..24].try_into().expect("slice of 6"));
        let target_ip = Ipv4Addr::new(bytes[24], bytes[25], bytes[26], bytes[27]);
        Ok(ArpPacket {
            op,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArpPacket {
        ArpPacket::request(
            MacAddr::new([1, 2, 3, 4, 5, 6]),
            Ipv4Addr::new(192, 168, 0, 10),
            Ipv4Addr::new(192, 168, 0, 1),
        )
    }

    #[test]
    fn roundtrip() {
        let pkt = sample();
        let mut buf = Vec::new();
        pkt.encode(&mut buf);
        assert_eq!(buf.len(), PACKET_LEN);
        assert_eq!(ArpPacket::parse(&buf).unwrap(), pkt);
    }

    #[test]
    fn probe_has_unspecified_sender() {
        let probe = ArpPacket::probe(MacAddr::ZERO, Ipv4Addr::new(10, 0, 0, 1));
        assert!(probe.sender_ip.is_unspecified());
        assert_eq!(probe.op, ArpOp::Request);
    }

    #[test]
    fn announcement_targets_own_ip() {
        let ip = Ipv4Addr::new(10, 0, 0, 9);
        let ann = ArpPacket::announcement(MacAddr::BROADCAST, ip);
        assert_eq!(ann.sender_ip, ip);
        assert_eq!(ann.target_ip, ip);
    }

    #[test]
    fn rejects_non_ethernet_arp() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf[1] = 6; // htype = IEEE 802 networks
        assert!(matches!(
            ArpPacket::parse(&buf).unwrap_err(),
            ParseError::Invalid { layer: "arp", .. }
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(ArpPacket::parse(&[0u8; 27]).is_err());
    }
}
