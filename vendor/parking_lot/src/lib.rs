//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the parking_lot calling convention:
//! `lock()` / `read()` / `write()` return guards directly (no `Result`),
//! recovering from poisoning instead of propagating it.

use std::fmt;

/// A mutual-exclusion primitive (std-backed).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock (std-backed).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
