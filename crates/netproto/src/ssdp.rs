//! Simple Service Discovery Protocol (UPnP discovery over UDP 1900).
//!
//! SSDP reuses HTTP framing; this module provides constructors for the two
//! message kinds IoT devices emit during setup: `M-SEARCH` discovery
//! probes and `NOTIFY ssdp:alive` presence announcements.

use crate::http::{HttpMessage, Method};

/// The SSDP multicast IPv4 address.
pub const MULTICAST_ADDR: std::net::Ipv4Addr = std::net::Ipv4Addr::new(239, 255, 255, 250);

/// Builds an `M-SEARCH` discovery probe for `search_target`
/// (e.g. `upnp:rootdevice` or `ssdp:all`).
pub fn m_search(search_target: &str) -> HttpMessage {
    HttpMessage::Request {
        method: Method::MSearch,
        target: "*".into(),
        headers: vec![
            ("HOST".into(), format!("{MULTICAST_ADDR}:1900")),
            ("MAN".into(), "\"ssdp:discover\"".into()),
            ("MX".into(), "3".into()),
            ("ST".into(), search_target.into()),
        ],
        body: bytes::Bytes::new(),
    }
}

/// Builds a `NOTIFY ssdp:alive` announcement for a device of `device_type`
/// whose description document lives at `location`.
pub fn notify_alive(device_type: &str, location: &str) -> HttpMessage {
    HttpMessage::Request {
        method: Method::Notify,
        target: "*".into(),
        headers: vec![
            ("HOST".into(), format!("{MULTICAST_ADDR}:1900")),
            ("CACHE-CONTROL".into(), "max-age=1800".into()),
            ("LOCATION".into(), location.into()),
            ("NT".into(), device_type.into()),
            ("NTS".into(), "ssdp:alive".into()),
            ("USN".into(), format!("uuid::{device_type}")),
        ],
        body: bytes::Bytes::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_search_has_discover_man_header() {
        let msg = m_search("upnp:rootdevice");
        assert_eq!(msg.header("MAN"), Some("\"ssdp:discover\""));
        assert_eq!(msg.header("ST"), Some("upnp:rootdevice"));
        let parsed = HttpMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn notify_is_alive() {
        let msg = notify_alive(
            "urn:Belkin:device:insight:1",
            "http://10.0.0.5:49153/setup.xml",
        );
        assert_eq!(msg.header("NTS"), Some("ssdp:alive"));
        assert!(matches!(
            msg,
            HttpMessage::Request {
                method: Method::Notify,
                ..
            }
        ));
    }
}
