//! Random Forest scaling: training one classifier per device-type stays
//! cheap (the "new classifier without relearning" claim, Sect. IV-B.1),
//! and prediction is microseconds — which is what lets the bank scale to
//! "thousands of device-types" with classification under 100 ms
//! (Sect. VI-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::{BankConfig, ClassifierBank, FingerprintDataset};
use sentinel_devicesim::catalog;
use sentinel_ml::{Dataset, ForestConfig, RandomForest};

fn synthetic(rows: usize, features: usize) -> Dataset {
    let mut data = Dataset::new(features);
    let mut row = vec![0.0; features];
    for i in 0..rows {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = ((i * 31 + j * 17) % 97) as f64;
        }
        data.push(&row, i % 2);
    }
    data
}

fn forest_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_train");
    group.sample_size(10);
    // The paper's per-type training set: 20 positives + 200 negatives,
    // 276 features.
    for rows in [55usize, 220, 880] {
        let data = synthetic(rows, 276);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &data, |b, data| {
            b.iter(|| RandomForest::fit(data, &ForestConfig::default().with_seed(1)))
        });
    }
    group.finish();
}

fn forest_train_threads(c: &mut Criterion) {
    // The same fit fanned out over worker threads: per-tree RNG streams
    // are pre-drawn, so every thread count produces the identical forest
    // (asserted in sentinel-ml's tests) — this measures only the speedup.
    let data = synthetic(880, 276);
    let mut group = c.benchmark_group("forest_train_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let config = ForestConfig::default().with_seed(1).with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &config,
            |b, config| b.iter(|| RandomForest::fit(&data, config)),
        );
    }
    group.finish();
}

fn forest_predict(c: &mut Criterion) {
    let data = synthetic(220, 276);
    let forest = RandomForest::fit(&data, &ForestConfig::default().with_seed(1));
    let row = data.row(0).to_vec();
    c.bench_function("forest_predict", |b| {
        b.iter(|| forest.predict(std::hint::black_box(&row)))
    });
}

fn incremental_type_addition(c: &mut Criterion) {
    // Adding the 27th device-type to an existing 26-type bank — the
    // operation the paper contrasts with multi-class relearning.
    let devices = catalog();
    let dataset26 = FingerprintDataset::collect(&devices[..26], 10, 21);
    let dataset27 = FingerprintDataset::collect(&devices, 10, 21);
    let config = BankConfig {
        forest: ForestConfig::default().with_trees(50),
        ..BankConfig::default()
    };
    let mut group = c.benchmark_group("bank");
    group.sample_size(10);
    group.bench_function("add_one_type", |b| {
        b.iter_batched(
            || ClassifierBank::train(&dataset26, &config),
            |mut bank| bank.add_type("iKettle2", &dataset27),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = forest_train, forest_train_threads, forest_predict, incremental_type_addition
}
criterion_main!(benches);
