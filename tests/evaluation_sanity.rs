//! A reduced version of the Sect. VI-B evaluation run as an integration
//! test: guards the shape of Fig. 5 / Table III against regressions in
//! any crate (device models, features, classifiers, discrimination).

use sentinel_bench::evaluation::{evaluate, EvalConfig};
use sentinel_core::IdentifyMode;

fn quick_config() -> EvalConfig {
    EvalConfig {
        runs: 10,
        folds: 5,
        repetitions: 2,
        trees: 40,
        workers: 1,
        seed: 42,
        ..EvalConfig::default()
    }
}

#[test]
fn fig5_shape_holds() {
    let result = evaluate(&quick_config());
    let accuracy: std::collections::HashMap<String, f64> =
        result.per_type_accuracy().into_iter().collect();

    // Global accuracy in the paper's regime (paper: 0.815).
    let global = result.global_accuracy();
    assert!((0.70..=0.93).contains(&global), "global accuracy {global}");

    // The seventeen behaviourally distinct devices identify reliably.
    for name in [
        "Aria",
        "HomeMaticPlug",
        "Withings",
        "MAXGateway",
        "HueBridge",
        "HueSwitch",
        "EdnetGateway",
        "EdnetCam",
        "EdimaxCam",
        "WeMoInsightSwitch",
        "WeMoLink",
        "WeMoSwitch",
        "D-LinkHomeHub",
        "D-LinkCam",
    ] {
        assert!(
            accuracy[name] >= 0.85,
            "{name} should be easy, got {}",
            accuracy[name]
        );
    }

    // The firmware-sharing families confuse (the Table III block):
    // nobody in a family reaches the easy devices' accuracy.
    for name in [
        "D-LinkWaterSensor",
        "D-LinkSiren",
        "D-LinkSensor",
        "TP-LinkPlugHS110",
        "TP-LinkPlugHS100",
        "EdimaxPlug1101W",
        "EdimaxPlug2101W",
        "SmarterCoffee",
        "iKettle2",
    ] {
        assert!(
            (0.05..=0.85).contains(&accuracy[name]),
            "{name} should confuse moderately, got {}",
            accuracy[name]
        );
    }
}

#[test]
fn confusion_stays_within_vendor_families() {
    let result = evaluate(&quick_config());
    let c = &result.confusion;
    let names = c.labels();
    let family_of = |name: &str| -> usize {
        for (g, group) in sentinel_devicesim::confusable_groups().iter().enumerate() {
            if group.contains(&name) {
                return g + 1;
            }
        }
        0
    };
    let mut cross_family = 0usize;
    let mut within_family = 0usize;
    for actual in 0..27 {
        let fam = family_of(&names[actual]);
        if fam == 0 {
            continue;
        }
        for (predicted, predicted_name) in names.iter().enumerate().take(27) {
            if predicted == actual {
                continue;
            }
            let count = c.count(actual, predicted);
            if family_of(predicted_name) == fam {
                within_family += count;
            } else {
                cross_family += count;
            }
        }
    }
    assert!(within_family > 0, "families must confuse internally");
    assert!(
        cross_family * 10 <= within_family,
        "cross-family confusion ({cross_family}) should be rare vs within-family ({within_family})"
    );
}

#[test]
fn rf_only_mode_underperforms_two_stage_on_families() {
    // The ablation the paper's design implies: without edit-distance
    // discrimination, multi-match fingerprints are resolved by raw vote
    // confidence only.
    let two_stage = evaluate(&quick_config());
    let rf_only = evaluate(&EvalConfig {
        mode: IdentifyMode::RfOnly,
        ..quick_config()
    });
    // Both are valid pipelines; two-stage must not be (much) worse, and
    // the discrimination stage must actually run in two-stage mode.
    assert!(two_stage.discriminated > 0);
    assert_eq!(rf_only.discriminated, 0);
    assert!(
        two_stage.global_accuracy() + 0.05 >= rf_only.global_accuracy(),
        "two-stage {} vs rf-only {}",
        two_stage.global_accuracy(),
        rf_only.global_accuracy()
    );
}
