//! Protocol classification: which of the 16 Table I protocols a packet
//! uses.
//!
//! The paper's first 16 fingerprint features are binary indicators, one
//! per protocol: 2 link-layer (ARP, LLC), 4 network-layer (IP, ICMP,
//! ICMPv6, EAPoL), 2 transport-layer (TCP, UDP) and 8 application-layer
//! (HTTP, HTTPS, DHCP, BOOTP, SSDP, DNS, MDNS, NTP). A packet can set
//! several bits at once (a DHCPDISCOVER sets IP, UDP, DHCP and BOOTP).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::packet::{AppPayload, Packet, PacketBody, Transport};
use crate::ports;

/// One of the 16 protocols tracked by the Table I fingerprint features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Protocol {
    /// ARP (link layer).
    Arp = 0,
    /// LLC / 802.2 (link layer).
    Llc = 1,
    /// IP — v4 or v6 (network layer).
    Ip = 2,
    /// ICMPv4 (network layer).
    Icmp = 3,
    /// ICMPv6 (network layer).
    Icmpv6 = 4,
    /// EAPoL / 802.1X (network layer).
    Eapol = 5,
    /// TCP (transport layer).
    Tcp = 6,
    /// UDP (transport layer).
    Udp = 7,
    /// HTTP (application layer).
    Http = 8,
    /// HTTPS / TLS (application layer).
    Https = 9,
    /// DHCP (application layer).
    Dhcp = 10,
    /// BOOTP (application layer; every DHCP message is also BOOTP).
    Bootp = 11,
    /// SSDP (application layer).
    Ssdp = 12,
    /// DNS (application layer).
    Dns = 13,
    /// Multicast DNS (application layer).
    Mdns = 14,
    /// NTP (application layer).
    Ntp = 15,
}

impl Protocol {
    /// All 16 protocols in Table I order.
    pub const ALL: [Protocol; 16] = [
        Protocol::Arp,
        Protocol::Llc,
        Protocol::Ip,
        Protocol::Icmp,
        Protocol::Icmpv6,
        Protocol::Eapol,
        Protocol::Tcp,
        Protocol::Udp,
        Protocol::Http,
        Protocol::Https,
        Protocol::Dhcp,
        Protocol::Bootp,
        Protocol::Ssdp,
        Protocol::Dns,
        Protocol::Mdns,
        Protocol::Ntp,
    ];

    /// The protocol's bit index (0–15) within a [`ProtocolSet`].
    pub const fn bit(self) -> u8 {
        self as u8
    }

    /// Short lowercase name (e.g. `"mdns"`).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Arp => "arp",
            Protocol::Llc => "llc",
            Protocol::Ip => "ip",
            Protocol::Icmp => "icmp",
            Protocol::Icmpv6 => "icmpv6",
            Protocol::Eapol => "eapol",
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
            Protocol::Http => "http",
            Protocol::Https => "https",
            Protocol::Dhcp => "dhcp",
            Protocol::Bootp => "bootp",
            Protocol::Ssdp => "ssdp",
            Protocol::Dns => "dns",
            Protocol::Mdns => "mdns",
            Protocol::Ntp => "ntp",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`Protocol`]s packed into 16 bits.
///
/// ```
/// use sentinel_netproto::{Protocol, ProtocolSet};
///
/// let mut set = ProtocolSet::new();
/// set.insert(Protocol::Udp);
/// set.insert(Protocol::Dns);
/// assert!(set.contains(Protocol::Udp));
/// assert!(!set.contains(Protocol::Tcp));
/// assert_eq!(set.iter().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProtocolSet(u16);

impl ProtocolSet {
    /// The empty set.
    pub const fn new() -> Self {
        ProtocolSet(0)
    }

    /// Creates a set from its raw bitmask.
    pub const fn from_bits(bits: u16) -> Self {
        ProtocolSet(bits)
    }

    /// The raw bitmask.
    pub const fn bits(&self) -> u16 {
        self.0
    }

    /// Adds a protocol to the set.
    pub fn insert(&mut self, protocol: Protocol) {
        self.0 |= 1 << protocol.bit();
    }

    /// Returns `true` if the set contains `protocol`.
    pub const fn contains(&self, protocol: Protocol) -> bool {
        self.0 & (1 << protocol.bit()) != 0
    }

    /// Returns `true` if no protocols are set.
    pub const fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the protocols in the set, in Table I order.
    pub fn iter(&self) -> impl Iterator<Item = Protocol> + '_ {
        Protocol::ALL.into_iter().filter(|p| self.contains(*p))
    }
}

impl FromIterator<Protocol> for ProtocolSet {
    fn from_iter<I: IntoIterator<Item = Protocol>>(iter: I) -> Self {
        let mut set = ProtocolSet::new();
        for protocol in iter {
            set.insert(protocol);
        }
        set
    }
}

impl Extend<Protocol> for ProtocolSet {
    fn extend<I: IntoIterator<Item = Protocol>>(&mut self, iter: I) {
        for protocol in iter {
            self.insert(protocol);
        }
    }
}

impl fmt::Display for ProtocolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for protocol in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{protocol}")?;
            first = false;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// Classifies a packet into its [`ProtocolSet`].
pub fn classify(packet: &Packet) -> ProtocolSet {
    let mut set = ProtocolSet::new();
    match &packet.body {
        PacketBody::Arp(_) => set.insert(Protocol::Arp),
        PacketBody::Eapol(_) => set.insert(Protocol::Eapol),
        PacketBody::Llc { .. } => set.insert(Protocol::Llc),
        PacketBody::Ipv4 { transport, .. } | PacketBody::Ipv6 { transport, .. } => {
            set.insert(Protocol::Ip);
            classify_transport(transport, &mut set);
        }
        PacketBody::Other { .. } => {}
    }
    set
}

fn classify_transport(transport: &Transport, set: &mut ProtocolSet) {
    match transport {
        Transport::Icmp(_) => set.insert(Protocol::Icmp),
        Transport::Icmpv6(_) => set.insert(Protocol::Icmpv6),
        Transport::Tcp { header, payload } => {
            set.insert(Protocol::Tcp);
            classify_app(payload, header.src_port, header.dst_port, false, set);
        }
        Transport::Udp { header, payload } => {
            set.insert(Protocol::Udp);
            classify_app(payload, header.src_port, header.dst_port, true, set);
        }
        Transport::Other { .. } => {}
    }
}

fn classify_app(
    payload: &AppPayload,
    src_port: u16,
    dst_port: u16,
    udp: bool,
    set: &mut ProtocolSet,
) {
    let port_is = |p: u16| src_port == p || dst_port == p;
    match payload {
        AppPayload::Dhcp(msg) => {
            set.insert(Protocol::Bootp);
            if msg.is_dhcp() {
                set.insert(Protocol::Dhcp);
            }
        }
        AppPayload::Dns(_) => {
            if udp && port_is(ports::MDNS) {
                set.insert(Protocol::Mdns);
            } else {
                set.insert(Protocol::Dns);
            }
        }
        AppPayload::Http(_) => {
            if udp && port_is(ports::SSDP) {
                set.insert(Protocol::Ssdp);
            } else {
                set.insert(Protocol::Http);
            }
        }
        AppPayload::Tls(_) => set.insert(Protocol::Https),
        AppPayload::Ntp(_) => set.insert(Protocol::Ntp),
        AppPayload::Raw(_) | AppPayload::Empty => {
            // No parsed payload: fall back to port-based classification so
            // that e.g. a bare SYN to :443 still counts as HTTPS intent.
            if port_is(ports::HTTP) || port_is(ports::HTTP_ALT) {
                set.insert(Protocol::Http);
            } else if port_is(ports::HTTPS) {
                set.insert(Protocol::Https);
            } else if port_is(ports::DNS) {
                set.insert(Protocol::Dns);
            } else if udp && port_is(ports::MDNS) {
                set.insert(Protocol::Mdns);
            } else if udp && port_is(ports::SSDP) {
                set.insert(Protocol::Ssdp);
            } else if udp && port_is(ports::NTP) {
                set.insert(Protocol::Ntp);
            } else if udp && (port_is(ports::DHCP_SERVER) || port_is(ports::DHCP_CLIENT)) {
                set.insert(Protocol::Bootp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::{DnsMessage, Question};
    use crate::tcp::{TcpFlags, TcpHeader};
    use crate::tls::TlsRecord;
    use crate::{MacAddr, Timestamp};
    use std::net::Ipv4Addr;

    fn mac() -> MacAddr {
        MacAddr::new([9, 9, 9, 9, 9, 9])
    }

    #[test]
    fn dhcp_sets_bootp_and_dhcp() {
        let set = Packet::dhcp_discover(mac(), 1, 0).protocols();
        for p in [Protocol::Ip, Protocol::Udp, Protocol::Dhcp, Protocol::Bootp] {
            assert!(set.contains(p), "missing {p}");
        }
        assert!(!set.contains(Protocol::Tcp));
    }

    #[test]
    fn mdns_distinguished_from_dns_by_port() {
        let dns = Packet::udp_ipv4(
            Timestamp::ZERO,
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            50000,
            ports::DNS,
            AppPayload::Dns(DnsMessage::query(1, [Question::a("x.example")])),
        );
        let mdns = Packet::udp_ipv4(
            Timestamp::ZERO,
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(224, 0, 0, 251),
            ports::MDNS,
            ports::MDNS,
            AppPayload::Dns(DnsMessage::mdns_query([Question::ptr("_http._tcp.local")])),
        );
        assert!(dns.protocols().contains(Protocol::Dns));
        assert!(!dns.protocols().contains(Protocol::Mdns));
        assert!(mdns.protocols().contains(Protocol::Mdns));
        assert!(!mdns.protocols().contains(Protocol::Dns));
    }

    #[test]
    fn ssdp_is_http_over_udp_1900() {
        let ssdp = Packet::udp_ipv4(
            Timestamp::ZERO,
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 2),
            crate::ssdp::MULTICAST_ADDR,
            50001,
            ports::SSDP,
            AppPayload::Http(crate::ssdp::m_search("ssdp:all")),
        );
        let set = ssdp.protocols();
        assert!(set.contains(Protocol::Ssdp));
        assert!(!set.contains(Protocol::Http));
    }

    #[test]
    fn bare_syn_classified_by_port() {
        let syn = Packet::tcp_ipv4(
            Timestamp::ZERO,
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(52, 0, 0, 1),
            TcpHeader::new(49200, ports::HTTPS, TcpFlags::SYN),
            AppPayload::Empty,
        );
        assert!(syn.protocols().contains(Protocol::Https));
    }

    #[test]
    fn tls_payload_is_https() {
        let packet = Packet::tcp_ipv4(
            Timestamp::ZERO,
            mac(),
            MacAddr::ZERO,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(52, 0, 0, 1),
            TcpHeader::new(49200, 8883, TcpFlags::ACK),
            AppPayload::Tls(TlsRecord::client_hello(100)),
        );
        assert!(packet.protocols().contains(Protocol::Https));
    }

    #[test]
    fn set_operations() {
        let set: ProtocolSet = [Protocol::Arp, Protocol::Ntp].into_iter().collect();
        assert_eq!(set.iter().count(), 2);
        assert_eq!(set.to_string(), "arp+ntp");
        assert!(ProtocolSet::new().is_empty());
        assert_eq!(ProtocolSet::new().to_string(), "(none)");
    }

    #[test]
    fn all_protocols_have_distinct_bits() {
        let mut seen = std::collections::HashSet::new();
        for p in Protocol::ALL {
            assert!(seen.insert(p.bit()), "duplicate bit for {p}");
            assert!(p.bit() < 16);
        }
        assert_eq!(seen.len(), 16);
    }
}
