//! Fleet-level aggregated statistics.
//!
//! # Aggregation rules
//!
//! Counters are **summed** across home gateways. In particular the
//! cache hit ratio is derived from the summed `cache_hits` and
//! `cache_lookups` — never by averaging per-gateway ratios, which
//! would let mostly-idle gateways (zero lookups) skew the fleet
//! number. `max_home_peak_resident` is the one non-sum: it is the
//! maximum per-home session peak, the number a per-gateway capacity
//! plan needs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sim::HomeOutcome;

/// Summed (and one maxed) counters over every home gateway of a fleet
/// run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Home networks simulated.
    pub homes: usize,
    /// Wire frames ingested across all gateways.
    pub packets_in: u64,
    /// Sessions opened across all gateways.
    pub sessions_opened: u64,
    /// Setups that reached identification across all gateways.
    pub sessions_completed: u64,
    /// Sessions shed by bounded tables across all gateways.
    pub sessions_evicted: u64,
    /// Frames rejected by the lenient decoder.
    pub frames_malformed: u64,
    /// Frames the wire scanner punted to the full decoder
    /// (`NeedsDecode`). The fleet soak asserts this stays zero.
    pub frames_decoded: u64,
    /// Highest per-home resident-session peak (max, not sum).
    pub max_home_peak_resident: usize,
    /// Devices onboarded (one report each) across all gateways.
    pub onboarded: u64,
    /// Onboardings whose device-type was identified.
    pub identified: u64,
    /// Onboardings rejected by every classifier.
    pub unknown: u64,
    /// Onboardings landing in strict isolation.
    pub strict: u64,
    /// Onboardings landing in restricted isolation.
    pub restricted: u64,
    /// Onboardings landing in trusted isolation.
    pub trusted: u64,
    /// Enforcement rules installed across all gateways.
    pub rules_installed: u64,
    /// Rules removed by devices leaving their home.
    pub rules_removed: u64,
    /// Rules still cached at the end of the run.
    pub rules_resident: u64,
    /// Devices that roamed between homes mid-setup.
    pub roams: u64,
    /// Rule-cache hits, summed.
    pub cache_hits: u64,
    /// Rule-cache lookups, summed.
    pub cache_lookups: u64,
    /// Data-plane probe flows the gateways allowed.
    pub probes_allowed: u64,
    /// Data-plane probe flows the gateways denied.
    pub probes_denied: u64,
}

impl FleetStats {
    /// Folds one home's outcome into the fleet totals.
    pub fn absorb(&mut self, outcome: &HomeOutcome) {
        let s = &outcome.stats;
        self.packets_in += s.packets_in;
        self.sessions_opened += s.sessions_opened;
        self.sessions_completed += s.sessions_completed();
        self.sessions_evicted += s.sessions_evicted;
        self.frames_malformed += s.frames_malformed;
        self.frames_decoded += s.frames_decoded;
        self.max_home_peak_resident = self.max_home_peak_resident.max(s.peak_resident_sessions);
        self.onboarded += outcome.reports.len() as u64;
        self.identified += s.identified;
        self.unknown += s.unknown;
        self.strict += s.strict;
        self.restricted += s.restricted;
        self.trusted += s.trusted;
        self.rules_installed += outcome.rules_installed;
        self.rules_removed += outcome.rules_removed;
        self.rules_resident += outcome.rules_resident;
        self.roams += outcome.roam_in.is_some() as u64;
        self.cache_hits += outcome.cache_hits;
        self.cache_lookups += outcome.cache_lookups;
        self.probes_allowed += outcome.probes_allowed;
        self.probes_denied += outcome.probes_denied;
    }

    /// Fleet-wide rule-cache hit ratio, from the summed counters
    /// (0.0 when the fleet never looked a rule up).
    pub fn hit_ratio(&self) -> f64 {
        if self.cache_lookups == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.cache_lookups as f64
    }
}

/// Shape metrics of one fleet run's assessment pass — how the work was
/// scheduled, not what it computed.
///
/// Kept **outside** [`crate::FleetReport`] on purpose: batch shape
/// varies with [`crate::FleetConfig::assess_batch_rows`] while the
/// report must stay byte-identical across every execution shape, so
/// these numbers ride the separate return of
/// [`crate::run_fleet_with_metrics`] (the fleet soak emits them next to
/// its timing data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Completions assessed across the whole fleet.
    pub assess_rows: u64,
    /// Keyed batch calls those rows were chunked into.
    pub assess_batches: u64,
}

impl FleetMetrics {
    /// Mean assessed rows per batch call — the amortization the
    /// cross-gateway pooling bought (the inline per-home loop averaged
    /// single-digit rows per call).
    pub fn rows_per_batch(&self) -> f64 {
        if self.assess_batches == 0 {
            return 0.0;
        }
        self.assess_rows as f64 / self.assess_batches as f64
    }
}

impl fmt::Display for FleetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} homes: {} packets, {} onboarded ({} identified / {} unknown; \
             {} strict / {} restricted / {} trusted), {} shed, {} roamed, \
             rules {} installed / {} removed / {} resident, \
             cache {}/{} hits ({:.3}), probes {} allowed / {} denied, \
             max home peak {}, decode fallbacks {}",
            self.homes,
            self.packets_in,
            self.onboarded,
            self.identified,
            self.unknown,
            self.strict,
            self.restricted,
            self.trusted,
            self.sessions_evicted,
            self.roams,
            self.rules_installed,
            self.rules_removed,
            self.rules_resident,
            self.cache_hits,
            self.cache_lookups,
            self.hit_ratio(),
            self.probes_allowed,
            self.probes_denied,
            self.max_home_peak_resident,
            self.frames_decoded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_stream::StreamStats;

    fn outcome(hits: u64, lookups: u64) -> HomeOutcome {
        HomeOutcome {
            home: 0,
            stats: StreamStats::default(),
            reports: Vec::new(),
            roam_out: None,
            roam_in: None,
            rules_installed: 0,
            rules_removed: 0,
            rules_resident: 0,
            cache_hits: hits,
            cache_lookups: lookups,
            probes_allowed: 0,
            probes_denied: 0,
        }
    }

    #[test]
    fn hit_ratio_sums_instead_of_averaging() {
        // One busy gateway (90/100 hits) and nine idle ones. Averaging
        // per-gateway ratios — with the old idle ratio of 1.0 — would
        // report (0.9 + 9 × 1.0) / 10 = 0.99; the summed ratio is 0.9.
        let mut stats = FleetStats::default();
        stats.absorb(&outcome(90, 100));
        for _ in 0..9 {
            stats.absorb(&outcome(0, 0));
        }
        assert_eq!(stats.cache_hits, 90);
        assert_eq!(stats.cache_lookups, 100);
        assert!((stats.hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn idle_fleet_hit_ratio_is_zero() {
        let stats = FleetStats::default();
        assert_eq!(stats.hit_ratio(), 0.0);
    }
}
