//! Fingerprint-extraction throughput: the Security Gateway must keep up
//! with setup bursts on commodity hardware (Table IV row "Fingerprint
//! extraction").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract, FixedFingerprint};

fn extraction(c: &mut Criterion) {
    let devices = catalog();
    let testbed = Testbed::new(11);
    let mut group = c.benchmark_group("fingerprint_extraction");
    // A short trace (HueSwitch), a typical one (Aria) and the chattiest
    // one (D-LinkHomeHub).
    for name in ["HueSwitch", "Aria", "D-LinkHomeHub"] {
        let device = devices
            .iter()
            .find(|d| d.info.identifier == name)
            .expect("catalog device");
        let trace = testbed.setup_run(&device.profile, 0);
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, trace| {
            b.iter(|| {
                let full = extract(&trace.packets);
                FixedFingerprint::from_fingerprint(&full)
            })
        });
    }
    group.finish();
}

fn trace_generation(c: &mut Criterion) {
    // Simulator throughput: how fast the lab produces setup runs.
    let devices = catalog();
    let testbed = Testbed::new(12);
    c.bench_function("testbed_setup_run", |b| {
        let mut run = 0u64;
        b.iter(|| {
            run += 1;
            testbed.setup_run(&devices[(run % 27) as usize].profile, run)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = extraction, trace_generation
}
criterion_main!(benches);
