//! Deterministic fork/join helpers over crossbeam scoped threads.
//!
//! Every parallel site in the workspace (forest fitting, classifier-bank
//! training, cross-validation folds, stage-2 candidate scoring) funnels
//! through [`map_indexed`]: work items are claimed from an atomic
//! counter and results are merged back *by index*, so the output is
//! identical for every thread count — parallelism only changes who
//! computes each item, never what is computed or in which order results
//! are consumed.
//!
//! Thread counts are resolved by [`effective_threads`]: `0` means auto
//! (the `SENTINEL_THREADS` environment variable if set, otherwise the
//! machine's available parallelism) and `1` forces the exact sequential
//! code path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding auto thread-count resolution.
pub const THREADS_ENV: &str = "SENTINEL_THREADS";

/// Resolves a configured thread count: any nonzero value is taken as
/// is; `0` means auto — `SENTINEL_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
pub fn effective_threads(configured: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Computes `f(0), f(1), …, f(n - 1)` on up to `threads` worker threads
/// and returns the results in index order.
///
/// With `threads <= 1` (or `n <= 1`) this is a plain sequential loop —
/// byte-for-byte the pre-parallelism behaviour. Workers claim indices
/// from a shared atomic counter (cheap dynamic load balancing) and tag
/// each result with its index, so the merged output never depends on
/// scheduling.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_init(n, threads, || (), |(), index| f(index))
}

/// [`map_indexed`] with per-worker state: each worker thread calls
/// `init()` once and threads the resulting value through every item it
/// claims. Made for reusable scratch (e.g. a
/// [`crate::tree::FitArena`]) — one warm arena per worker instead of
/// one allocation storm per item.
///
/// The state must be pure scratch: which worker computes which item is
/// scheduling-dependent, so any state that influenced results would
/// break the "identical output for every thread count" contract.
///
/// # Panics
///
/// Propagates a panic from any invocation of `init` or `f`.
pub fn map_indexed_init<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        let mut state = init();
        return (0..n).map(|index| f(&mut state, index)).collect();
    }
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let init = &init;
                let f = &f;
                scope.spawn(move |_| {
                    let mut state = init();
                    let mut produced = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        produced.push((index, f(&mut state, index)));
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("parallel worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    // Ordered merge: scatter each tagged result into its slot.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (index, value) in bucket {
            slots[index] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 8] {
            let out = map_indexed(100, threads, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(map_indexed(3, 64, |i| i), vec![0, 1, 2]);
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        for threads in [1, 2, 8] {
            // Each worker counts how many items it processed; the sum
            // over all results must be n regardless of scheduling.
            let out = map_indexed_init(
                64,
                threads,
                || 0usize,
                |seen, i| {
                    *seen += 1;
                    (i, *seen)
                },
            );
            assert_eq!(out.len(), 64);
            assert!(out.iter().enumerate().all(|(k, &(i, _))| k == i));
            let total: usize = out.iter().filter(|&&(_, seen)| seen == 1).count();
            // Exactly one "first item" per participating worker.
            assert!(total >= 1 && total <= threads.min(64), "threads={threads}");
        }
    }

    #[test]
    fn nonzero_thread_count_is_taken_verbatim() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 1);
    }
}
