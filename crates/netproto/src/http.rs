//! A minimal HTTP/1.1 message model.
//!
//! IoT devices use plain HTTP during setup for cloud registration,
//! firmware-version checks and UPnP descriptions. Only start-line and
//! headers are modeled structurally; bodies are opaque bytes.

use bytes::{BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// An HTTP request method (including the SSDP extension methods, which use
/// HTTP framing over UDP).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// PUT.
    Put,
    /// SSDP M-SEARCH.
    MSearch,
    /// SSDP/GENA NOTIFY.
    Notify,
    /// Any other method token.
    Other(String),
}

impl Method {
    /// The method token as it appears on the wire.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::MSearch => "M-SEARCH",
            Method::Notify => "NOTIFY",
            Method::Other(s) => s,
        }
    }

    /// Classifies a method token.
    pub fn from_token(token: &str) -> Self {
        match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "M-SEARCH" => Method::MSearch,
            "NOTIFY" => Method::Notify,
            other => Method::Other(other.to_owned()),
        }
    }
}

/// An HTTP/1.1 message (request or response).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HttpMessage {
    /// A request.
    Request {
        /// Request method.
        method: Method,
        /// Request target (path or `*`).
        target: String,
        /// Header fields in order.
        headers: Vec<(String, String)>,
        /// Message body.
        body: Bytes,
    },
    /// A response.
    Response {
        /// Status code.
        status: u16,
        /// Reason phrase.
        reason: String,
        /// Header fields in order.
        headers: Vec<(String, String)>,
        /// Message body.
        body: Bytes,
    },
}

impl HttpMessage {
    /// A GET request for `target` on `host`.
    pub fn get(host: impl Into<String>, target: impl Into<String>) -> Self {
        HttpMessage::Request {
            method: Method::Get,
            target: target.into(),
            headers: vec![("Host".into(), host.into())],
            body: Bytes::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(
        host: impl Into<String>,
        target: impl Into<String>,
        body: impl Into<Bytes>,
    ) -> Self {
        let body = body.into();
        HttpMessage::Request {
            method: Method::Post,
            target: target.into(),
            headers: vec![
                ("Host".into(), host.into()),
                ("Content-Length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// The header fields of the message.
    pub fn headers(&self) -> &[(String, String)] {
        match self {
            HttpMessage::Request { headers, .. } | HttpMessage::Response { headers, .. } => headers,
        }
    }

    /// The value of a header (case-insensitive name match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers()
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The message body.
    pub fn body(&self) -> &Bytes {
        match self {
            HttpMessage::Request { body, .. } | HttpMessage::Response { body, .. } => body,
        }
    }

    /// Appends the serialized message to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            HttpMessage::Request {
                method,
                target,
                headers,
                body,
            } => {
                buf.put_slice(method.as_str().as_bytes());
                buf.put_slice(b" ");
                buf.put_slice(target.as_bytes());
                buf.put_slice(b" HTTP/1.1\r\n");
                for (name, value) in headers {
                    buf.put_slice(name.as_bytes());
                    buf.put_slice(b": ");
                    buf.put_slice(value.as_bytes());
                    buf.put_slice(b"\r\n");
                }
                buf.put_slice(b"\r\n");
                buf.put_slice(body);
            }
            HttpMessage::Response {
                status,
                reason,
                headers,
                body,
            } => {
                buf.put_slice(format!("HTTP/1.1 {status} {reason}\r\n").as_bytes());
                for (name, value) in headers {
                    buf.put_slice(name.as_bytes());
                    buf.put_slice(b": ");
                    buf.put_slice(value.as_bytes());
                    buf.put_slice(b"\r\n");
                }
                buf.put_slice(b"\r\n");
                buf.put_slice(body);
            }
        }
    }

    /// Encodes into a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Parses an HTTP message.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Invalid`] if no CRLFCRLF head terminator is
    /// found or the start line is malformed.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        let head_end = find_head_end(bytes)
            .ok_or_else(|| ParseError::invalid("http", "missing header terminator"))?;
        let head = std::str::from_utf8(&bytes[..head_end])
            .map_err(|_| ParseError::invalid("http", "head not utf-8"))?;
        let body = Bytes::copy_from_slice(&bytes[head_end + 4..]);
        let mut lines = head.split("\r\n");
        let start = lines
            .next()
            .ok_or_else(|| ParseError::invalid("http", "empty message"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| ParseError::invalid("http", format!("bad header line {line:?}")))?;
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
        if let Some(rest) = start
            .strip_prefix("HTTP/1.1 ")
            .or_else(|| start.strip_prefix("HTTP/1.0 "))
        {
            let (code, reason) = rest.split_once(' ').unwrap_or((rest, ""));
            let status = code
                .parse()
                .map_err(|_| ParseError::invalid("http", format!("bad status {code:?}")))?;
            Ok(HttpMessage::Response {
                status,
                reason: reason.to_owned(),
                headers,
                body,
            })
        } else {
            let mut parts = start.split(' ');
            let (method, target, version) = (parts.next(), parts.next(), parts.next());
            match (method, target, version) {
                (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/") => Ok(HttpMessage::Request {
                    method: Method::from_token(m),
                    target: t.to_owned(),
                    headers,
                    body,
                }),
                _ => Err(ParseError::invalid(
                    "http",
                    format!("bad start line {start:?}"),
                )),
            }
        }
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_roundtrip() {
        let msg = HttpMessage::get("fw.vendor.example", "/check?v=1.2");
        let parsed = HttpMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
        assert_eq!(parsed.header("host"), Some("fw.vendor.example"));
    }

    #[test]
    fn post_carries_body_and_length() {
        let msg = HttpMessage::post("api.example", "/register", b"id=42".as_slice());
        assert_eq!(msg.header("Content-Length"), Some("5"));
        let parsed = HttpMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.body().as_ref(), b"id=42");
    }

    #[test]
    fn response_roundtrip() {
        let msg = HttpMessage::Response {
            status: 200,
            reason: "OK".into(),
            headers: vec![("Server".into(), "lighttpd".into())],
            body: Bytes::from_static(b"<xml/>"),
        };
        assert_eq!(HttpMessage::parse(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn rejects_garbage() {
        assert!(HttpMessage::parse(b"not http at all").is_err());
        assert!(HttpMessage::parse(b"GET\r\n\r\n").is_err());
    }

    #[test]
    fn method_token_roundtrip() {
        for token in ["GET", "POST", "PUT", "M-SEARCH", "NOTIFY", "PATCH"] {
            assert_eq!(Method::from_token(token).as_str(), token);
        }
    }
}
