//! End-to-end one-vs-rest bank training: all 27 per-type forests over
//! the full fingerprint corpus. This is the cost an IoTSSP pays to
//! (re)train from scratch, and the target of the shared-binned-corpus +
//! arena fitting path: the corpus is copied and binned once, every
//! label trains over an index view of it, and per-worker `FitArena`s
//! keep the steady-state node loop allocation-free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::{BankConfig, ClassifierBank, FingerprintDataset};
use sentinel_devicesim::catalog;

fn bank_train(c: &mut Criterion) {
    // The paper's corpus shape: 27 device-types, 276-dimensional F'.
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 21);
    let mut group = c.benchmark_group("bank_train");
    group.sample_size(10);
    // Sequential is the exact reference path; auto saturates the
    // machine. Both produce bit-identical banks (pinned in
    // sentinel-core's tests), so this measures only the speedup.
    for (name, threads) in [("sequential", 1usize), ("auto", 0)] {
        let config = BankConfig {
            threads,
            ..BankConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| ClassifierBank::train(&dataset, config))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bank_train
}
criterion_main!(benches);
