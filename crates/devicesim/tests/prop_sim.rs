//! Property tests for the device simulator: every catalog profile, under
//! arbitrary seeds, produces well-formed setup traces.

use proptest::prelude::*;

use sentinel_devicesim::{catalog, Testbed};
use sentinel_netproto::Packet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traces_are_wellformed_for_any_seed(seed in any::<u64>(), device in 0usize..27, run in 0u64..1000) {
        let devices = catalog();
        let testbed = Testbed::new(seed);
        let trace = testbed.setup_run(&devices[device].profile, run);

        // Non-empty, monotonic, single-source.
        prop_assert!(!trace.packets.is_empty());
        for window in trace.packets.windows(2) {
            prop_assert!(window[0].timestamp < window[1].timestamp);
        }
        for packet in &trace.packets {
            prop_assert_eq!(packet.src_mac(), trace.mac);
        }
        prop_assert_eq!(trace.mac.oui(), devices[device].profile.oui);

        // Every packet survives the wire.
        for packet in &trace.packets {
            let parsed = Packet::parse(&packet.encode(), packet.timestamp).expect("roundtrip");
            prop_assert_eq!(&parsed, packet);
        }
    }

    #[test]
    fn same_seed_same_trace(seed in any::<u64>(), device in 0usize..27) {
        let devices = catalog();
        let a = Testbed::new(seed).setup_run(&devices[device].profile, 7);
        let b = Testbed::new(seed).setup_run(&devices[device].profile, 7);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fingerprints_are_extractable_from_any_run(seed in any::<u64>(), device in 0usize..27) {
        let devices = catalog();
        let trace = Testbed::new(seed).setup_run(&devices[device].profile, 0);
        let fingerprint = sentinel_fingerprint::extract(&trace.packets);
        prop_assert!(!fingerprint.is_empty());
        let fixed = sentinel_fingerprint::FixedFingerprint::from_fingerprint(&fingerprint);
        prop_assert_eq!(fixed.dimensions(), 276);
        // The first column of F' is never all-zero for a real trace.
        prop_assert!(fixed.as_slice()[..23].iter().any(|&v| v != 0.0));
    }
}
