//! The evaluation lab topology (Fig. 4): user devices `D1–Dn` on the
//! Security Gateway's wireless interface, a local server `Slocal`, and a
//! remote server `Sremote` in a cloud region.

use std::net::Ipv4Addr;

use serde::Serialize;

use sentinel_netproto::MacAddr;

/// The role of a host in the lab network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum HostKind {
    /// The Security Gateway itself.
    Gateway,
    /// A wireless client device (`D1`…`Dn`).
    WirelessDevice,
    /// A server on the wired local network (`Slocal`).
    LocalServer,
    /// A server on the Internet (`Sremote`, Amazon EC2 in the paper).
    RemoteServer,
}

/// One host of the lab network.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Host {
    /// Host name (e.g. `D1`, `Slocal`).
    pub name: String,
    /// MAC address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Role in the topology.
    pub kind: HostKind,
    /// Per-host one-way wireless/link latency contribution in
    /// milliseconds (radio quality differs per device, which is why the
    /// paper's Table V rows differ).
    pub link_latency_ms: f64,
}

/// The kind of path a flow takes through the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PathKind {
    /// Wireless device to wireless device (two radio hops via the AP).
    DeviceToDevice,
    /// Wireless device to the wired local server.
    DeviceToLocal,
    /// Wireless device to the remote server (adds Internet transit).
    DeviceToRemote,
}

/// The Fig. 4 lab network.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Topology {
    hosts: Vec<Host>,
    /// Local subnet prefix.
    pub subnet: Ipv4Addr,
    /// Local subnet mask length.
    pub mask_bits: u8,
}

impl Topology {
    /// Builds the evaluation topology: gateway, four user devices with
    /// slightly different radio characteristics, `Slocal` and `Sremote`.
    pub fn lab() -> Topology {
        let host = |name: &str, last: u8, kind, link_latency_ms| Host {
            name: name.to_owned(),
            mac: MacAddr::new([0x02, 0x4c, 0x41, 0x42, 0x00, last]),
            ip: match kind {
                HostKind::RemoteServer => Ipv4Addr::new(52, 57, 80, last),
                _ => Ipv4Addr::new(192, 168, 0, last),
            },
            kind,
            link_latency_ms,
        };
        Topology {
            hosts: vec![
                host("gateway", 1, HostKind::Gateway, 0.0),
                host("D1", 11, HostKind::WirelessDevice, 11.6),
                host("D2", 12, HostKind::WirelessDevice, 15.3),
                host("D3", 13, HostKind::WirelessDevice, 14.4),
                host("D4", 14, HostKind::WirelessDevice, 13.1),
                host("Slocal", 2, HostKind::LocalServer, 2.1),
                host("Sremote", 80, HostKind::RemoteServer, 1.2),
            ],
            subnet: Ipv4Addr::new(192, 168, 0, 0),
            mask_bits: 24,
        }
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Looks up a host by name.
    pub fn host(&self, name: &str) -> Option<&Host> {
        self.hosts.iter().find(|h| h.name == name)
    }

    /// The wireless user devices, in order.
    pub fn devices(&self) -> impl Iterator<Item = &Host> {
        self.hosts
            .iter()
            .filter(|h| h.kind == HostKind::WirelessDevice)
    }

    /// Classifies the path between two hosts.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not one the lab measures (source must be a
    /// wireless device).
    pub fn path_kind(&self, src: &Host, dst: &Host) -> PathKind {
        assert_eq!(
            src.kind,
            HostKind::WirelessDevice,
            "lab measurements originate at user devices"
        );
        match dst.kind {
            HostKind::WirelessDevice => PathKind::DeviceToDevice,
            HostKind::LocalServer => PathKind::DeviceToLocal,
            HostKind::RemoteServer => PathKind::DeviceToRemote,
            HostKind::Gateway => PathKind::DeviceToLocal,
        }
    }

    /// Whether an address is inside the local subnet.
    pub fn is_local(&self, ip: Ipv4Addr) -> bool {
        let mask = u32::MAX << (32 - self.mask_bits);
        (u32::from(ip) & mask) == (u32::from(self.subnet) & mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_matches_fig4() {
        let lab = Topology::lab();
        assert_eq!(lab.devices().count(), 4);
        assert!(lab.host("Slocal").is_some());
        assert!(lab.host("Sremote").is_some());
        assert!(lab.host("gateway").is_some());
        assert!(lab.host("D9").is_none());
    }

    #[test]
    fn path_kinds() {
        let lab = Topology::lab();
        let d1 = lab.host("D1").unwrap();
        let d4 = lab.host("D4").unwrap();
        let slocal = lab.host("Slocal").unwrap();
        let sremote = lab.host("Sremote").unwrap();
        assert_eq!(lab.path_kind(d1, d4), PathKind::DeviceToDevice);
        assert_eq!(lab.path_kind(d1, slocal), PathKind::DeviceToLocal);
        assert_eq!(lab.path_kind(d1, sremote), PathKind::DeviceToRemote);
    }

    #[test]
    fn locality() {
        let lab = Topology::lab();
        assert!(lab.is_local(Ipv4Addr::new(192, 168, 0, 77)));
        assert!(!lab.is_local(Ipv4Addr::new(52, 57, 80, 80)));
        assert!(!lab.is_local(lab.host("Sremote").unwrap().ip));
    }

    #[test]
    fn macs_are_unique() {
        let lab = Topology::lab();
        let macs: std::collections::HashSet<_> = lab.hosts().iter().map(|h| h.mac).collect();
        assert_eq!(macs.len(), lab.hosts().len());
    }
}
