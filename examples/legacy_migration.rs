//! Legacy installation migration (Sect. VIII-A): IoT Sentinel arrives as
//! a firmware update on a network that already has devices. Each device
//! is fingerprinted from its *standby* traffic (no setup phase was ever
//! observed), and moved to the trusted overlay only if it identifies as
//! vulnerability-free and supports WPS re-keying.
//!
//! ```text
//! cargo run --release --example legacy_migration
//! ```

use iot_sentinel::devicesim::{catalog, Testbed};
use iot_sentinel::prelude::*;
use iot_sentinel::sdn::EnforcementModule;

fn main() {
    let devices = catalog();

    // The IoTSSP trains on standby fingerprints for the legacy scenario
    // (the paper's Sect. VIII-A hypothesis: standby cycles are
    // characteristic too).
    println!("training the IoTSSP on standby-cycle fingerprints…");
    let dataset = FingerprintDataset::collect_standby(&devices, 20, 3, 42);
    let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());

    // The legacy network: a Hue bridge (clean, WPS-capable), a WeMo
    // switch (clean, ancient firmware without WPS re-keying), and an
    // Edimax camera (known CVE).
    let testbed = Testbed::new(2020);
    let fleet = [
        (4usize, RekeySupport::Wps, "HueBridge"),
        (12, RekeySupport::None, "WeMoSwitch"),
        (8, RekeySupport::Wps, "EdimaxCam"),
    ];
    let legacy: Vec<LegacyDevice> = fleet
        .iter()
        .map(|&(index, rekey, _)| {
            let trace = testbed.standby_run(&devices[index].profile, 0, 3);
            LegacyDevice {
                mac: trace.mac,
                packets: trace.packets,
                rekey,
            }
        })
        .collect();

    let mut module = EnforcementModule::new();
    println!(
        "migrating {} legacy devices (PSK policy: retain)…\n",
        legacy.len()
    );
    let records = migrate(&service, PskPolicy::Retain, &legacy, &mut module);
    for (record, &(_, _, expected)) in records.iter().zip(&fleet) {
        println!(
            "{} ({expected}):\n  identified: {}\n  outcome: {:?}\n  overlay: {}\n",
            record.mac,
            record.identification,
            record.outcome,
            module.overlay_of(record.mac),
        );
    }

    // With the stricter policy, the non-WPS device falls off the network.
    let mut module = EnforcementModule::new();
    let records = migrate(&service, PskPolicy::Deprecate, &legacy, &mut module);
    println!("--- with PSK policy: deprecate ---");
    for record in &records {
        println!("{}: {:?}", record.mac, record.outcome);
    }
}
