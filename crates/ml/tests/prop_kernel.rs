//! Three-way differential property tests for the row-blocked inference
//! kernels: on random forests and random batches, the scalar per-row
//! walk (`accepts` / `predict`), the blocked kernel over the narrow
//! 16-byte arena, and the same kernel over the widened 24-byte arena
//! must agree bit-for-bit — for every verdict, every class, every block
//! size, and every batch size from 1 to 64 (including batches that
//! don't divide the block).

use proptest::prelude::*;

use sentinel_ml::{BatchMatrix, Dataset, ForestConfig, PackedForest, RandomForest};

/// A deterministic value hash (splitmix-style) so datasets come from a
/// few proptest scalars instead of giant generated vectors.
fn mix(seed: u64, i: u64, f: u64) -> u64 {
    let mut x =
        seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ (f.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x
}

/// Builds a deterministic dataset. Integer-valued features produce
/// midpoint thresholds like `1.5` that round-trip `f32` exactly, so the
/// packed arena goes narrow; a step of `0.3` breaks the round-trip and
/// forces the wide arena.
fn dataset(seed: u64, rows: usize, features: usize, classes: usize, integer: bool) -> Dataset {
    let step = if integer { 1.0 } else { 0.3 };
    let mut data = Dataset::new(features);
    let mut row = vec![0.0f64; features];
    for i in 0..rows {
        for (f, slot) in row.iter_mut().enumerate() {
            *slot = (mix(seed, i as u64, f as u64) % 9) as f64 * step;
        }
        data.push(
            &row,
            (mix(seed, i as u64, 1 + features as u64) % classes as u64) as usize,
        );
    }
    data
}

fn forests(data: &Dataset, seed: u64) -> (RandomForest, PackedForest, PackedForest) {
    let forest = RandomForest::fit(data, &ForestConfig::default().with_trees(7).with_seed(seed));
    let packed = PackedForest::from_forest(&forest);
    let widened = packed.widened();
    (forest, packed, widened)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_accepts_matches_scalar_on_both_arenas(
        seed in any::<u64>(),
        rows in 20usize..60,
        features in 1usize..9,
        batch in 1usize..=64,
        integer in any::<bool>(),
    ) {
        let data = dataset(seed, rows, features, 2, integer);
        let (_, packed, widened) = forests(&data, seed);
        if integer {
            prop_assert!(packed.is_narrow(), "integer-valued splits must pack narrow");
        }
        let mut matrix = BatchMatrix::new();
        matrix.fill((0..batch).map(|i| data.row(i % rows)));
        let scalar: Vec<bool> = (0..batch).map(|i| packed.accepts(data.row(i % rows))).collect();
        for (blocked, wide) in [
            {
                let mut b = Vec::new();
                packed.accepts_rows_blocked::<4>(&matrix, &mut b);
                let mut w = Vec::new();
                widened.accepts_rows_blocked::<4>(&matrix, &mut w);
                (b, w)
            },
            {
                let mut b = Vec::new();
                packed.accepts_rows_blocked::<8>(&matrix, &mut b);
                let mut w = Vec::new();
                widened.accepts_rows_blocked::<8>(&matrix, &mut w);
                (b, w)
            },
        ] {
            prop_assert_eq!(&blocked, &scalar, "blocked kernel vs scalar");
            prop_assert_eq!(&wide, &scalar, "widened arena vs scalar");
        }
    }

    #[test]
    fn blocked_predict_matches_scalar_on_both_arenas(
        seed in any::<u64>(),
        rows in 20usize..60,
        features in 1usize..9,
        classes in 2usize..5,
        batch in 1usize..=64,
        integer in any::<bool>(),
    ) {
        let data = dataset(seed, rows, features, classes, integer);
        let (_, packed, widened) = forests(&data, seed);
        let mut matrix = BatchMatrix::new();
        matrix.fill((0..batch).map(|i| data.row(i % rows)));
        let scalar: Vec<usize> = (0..batch).map(|i| packed.predict(data.row(i % rows))).collect();
        let mut blocked = Vec::new();
        packed.predict_rows_blocked::<8>(&matrix, &mut blocked);
        prop_assert_eq!(&blocked, &scalar, "blocked kernel vs scalar");
        let mut wide = Vec::new();
        widened.predict_rows_blocked::<8>(&matrix, &mut wide);
        prop_assert_eq!(&wide, &scalar, "widened arena vs scalar");
        let mut odd = Vec::new();
        packed.predict_rows_blocked::<3>(&matrix, &mut odd);
        prop_assert_eq!(&odd, &scalar, "odd block size vs scalar");
    }

    #[test]
    fn forest_predict_agrees_with_packed_kernel(
        seed in any::<u64>(),
        rows in 20usize..50,
        features in 1usize..7,
        classes in 2usize..4,
    ) {
        // The unpacked forest, the packed scalar walk and the blocked
        // kernel are three implementations of one function.
        let data = dataset(seed, rows, features, classes, true);
        let (forest, packed, _) = forests(&data, seed);
        let mut matrix = BatchMatrix::new();
        matrix.fill((0..rows).map(|i| data.row(i)));
        let mut kernel = Vec::new();
        packed.predict_rows(&matrix, &mut kernel);
        for (i, &class) in kernel.iter().enumerate() {
            prop_assert_eq!(forest.predict(data.row(i)), class, "row {}", i);
            prop_assert_eq!(packed.predict(data.row(i)), class, "row {}", i);
        }
    }
}
