//! Capacity-bounded session table with deterministic LRU shedding.

use std::collections::HashMap;

use sentinel_netproto::MacAddr;

use crate::session::Session;

/// A bounded `MAC → Session` table.
///
/// Admission policy: a new session is always admitted; when the table is
/// full, the least-recently-active session is shed first (oldest
/// `last_seq`, ties broken by MAC so the choice never depends on hash
/// iteration order). Shedding is the explicit overflow policy of the
/// streaming runtime — the shed device simply re-enters monitoring if it
/// keeps talking.
#[derive(Debug, Default)]
pub struct SessionTable {
    capacity: usize,
    sessions: HashMap<MacAddr, Session>,
}

impl SessionTable {
    /// Creates a table holding at most `capacity` concurrent sessions.
    pub fn new(capacity: usize) -> Self {
        SessionTable {
            capacity: capacity.max(1),
            sessions: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Mutable access to an in-flight session.
    pub fn get_mut(&mut self, mac: MacAddr) -> Option<&mut Session> {
        self.sessions.get_mut(&mac)
    }

    /// Whether `mac` has an in-flight session.
    pub fn contains(&self, mac: MacAddr) -> bool {
        self.sessions.contains_key(&mac)
    }

    /// Admits a new session, shedding the least-recently-active one
    /// first if the table is full. Returns the shed entry, if any.
    pub fn admit(&mut self, mac: MacAddr, session: Session) -> Option<(MacAddr, Session)> {
        debug_assert!(!self.sessions.contains_key(&mac), "session already open");
        let shed = if self.sessions.len() >= self.capacity {
            self.shed_lru()
        } else {
            None
        };
        self.sessions.insert(mac, session);
        shed
    }

    /// Removes and returns a session (on completion).
    pub fn remove(&mut self, mac: MacAddr) -> Option<Session> {
        self.sessions.remove(&mac)
    }

    /// Drains every resident session, ordered by when it was opened
    /// (then MAC), for deterministic end-of-stream flushing.
    pub fn drain_ordered(&mut self) -> Vec<(MacAddr, Session)> {
        let mut drained: Vec<(MacAddr, Session)> = self.sessions.drain().collect();
        drained.sort_by_key(|(mac, session)| (session.opened_seq(), *mac));
        drained
    }

    fn shed_lru(&mut self) -> Option<(MacAddr, Session)> {
        let victim = self
            .sessions
            .iter()
            .min_by_key(|(mac, session)| (session.last_seq(), **mac))
            .map(|(mac, _)| *mac)?;
        self.sessions.remove(&victim).map(|s| (victim, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_netproto::Timestamp;

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([0, 0, 0, 0, 0, n])
    }

    #[test]
    fn admits_until_capacity_then_sheds_lru() {
        let mut table = SessionTable::new(2);
        assert!(table
            .admit(mac(1), Session::open(10, Timestamp::ZERO))
            .is_none());
        assert!(table
            .admit(mac(2), Session::open(20, Timestamp::ZERO))
            .is_none());
        // mac(1) has the oldest activity (last_seq 10) and is shed.
        let (shed, session) = table
            .admit(mac(3), Session::open(30, Timestamp::ZERO))
            .expect("table full");
        assert_eq!(shed, mac(1));
        assert_eq!(session.opened_seq(), 10);
        assert_eq!(table.len(), 2);
        assert!(table.contains(mac(2)) && table.contains(mac(3)));
    }

    #[test]
    fn lru_ties_break_by_mac() {
        let mut table = SessionTable::new(2);
        table.admit(mac(9), Session::open(5, Timestamp::ZERO));
        table.admit(mac(4), Session::open(5, Timestamp::ZERO));
        let (shed, _) = table
            .admit(mac(7), Session::open(6, Timestamp::ZERO))
            .unwrap();
        assert_eq!(shed, mac(4), "equal last_seq resolves to the smaller MAC");
    }

    #[test]
    fn drain_ordered_is_open_order() {
        let mut table = SessionTable::new(8);
        for (seq, m) in [(30u64, 3u8), (10, 1), (20, 2)] {
            table.admit(mac(m), Session::open(seq, Timestamp::ZERO));
        }
        let order: Vec<MacAddr> = table.drain_ordered().into_iter().map(|(m, _)| m).collect();
        assert_eq!(order, vec![mac(1), mac(2), mac(3)]);
        assert!(table.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let table = SessionTable::new(0);
        assert_eq!(table.capacity(), 1);
    }
}
