//! **Ablation experiments** for the design choices the paper fixes by
//! "preliminary analysis" (Sect. IV): the 12-packet `F'` truncation, the
//! 1:10 negative-sampling ratio, the 5 discrimination references, and the
//! two-stage pipeline itself.
//!
//! Each sweep perturbs exactly one knob of the Fig. 5 evaluation and
//! reports global accuracy.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin ablation_sweep
//! cargo run --release -p sentinel-bench --bin ablation_sweep -- --full   # paper-scale CV
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::evaluation::{evaluate, EvalConfig};
use sentinel_bench::tables;
use sentinel_core::IdentifyMode;

fn main() {
    let args = Args::from_env();
    let base = if args.switch("full") {
        EvalConfig::default()
    } else {
        // 2 repetitions of 5-fold CV keep the whole sweep in ~1 minute.
        EvalConfig {
            repetitions: 2,
            folds: 5,
            trees: 60,
            ..EvalConfig::default()
        }
    };

    print!(
        "{}",
        tables::banner("Ablations — design choices of Sect. IV")
    );
    println!(
        "baseline: {} runs/type, {}-fold CV x {} reps, {} trees\n",
        base.runs, base.folds, base.repetitions, base.trees
    );

    let run = |label: String, config: EvalConfig| -> Vec<String> {
        let result = evaluate(&config);
        vec![
            label,
            tables::ratio(result.global_accuracy()),
            format!("{:.0}%", result.discrimination_rate() * 100.0),
        ]
    };

    // Sweep 1: F' truncation length (paper: 12).
    let mut rows = Vec::new();
    for packets in [4usize, 8, 12, 16, 20] {
        let marker = if packets == 12 { " (paper)" } else { "" };
        rows.push(run(
            format!("F' = {packets} packets{marker}"),
            EvalConfig {
                packets,
                ..base.clone()
            },
        ));
    }
    print!(
        "{}",
        tables::render(&["F' truncation", "Accuracy", "Discrim."], &rows)
    );
    println!();

    // Sweep 2: negative-sampling ratio (paper: 10).
    let mut rows = Vec::new();
    for ratio in [1usize, 3, 10, 25] {
        let marker = if ratio == 10 { " (paper)" } else { "" };
        rows.push(run(
            format!("1:{ratio}{marker}"),
            EvalConfig {
                negative_ratio: ratio,
                ..base.clone()
            },
        ));
    }
    print!(
        "{}",
        tables::render(&["Negative ratio", "Accuracy", "Discrim."], &rows)
    );
    println!();

    // Sweep 3: discrimination references (paper: 5).
    let mut rows = Vec::new();
    for references in [1usize, 3, 5, 9] {
        let marker = if references == 5 { " (paper)" } else { "" };
        rows.push(run(
            format!("{references} refs{marker}"),
            EvalConfig {
                references,
                ..base.clone()
            },
        ));
    }
    print!(
        "{}",
        tables::render(&["Discrimination refs", "Accuracy", "Discrim."], &rows)
    );
    println!();

    // Sweep 4: pipeline variants.
    let mut rows = Vec::new();
    for (label, mode) in [
        ("two-stage (paper)", IdentifyMode::TwoStage),
        ("rf-only", IdentifyMode::RfOnly),
        ("edit-only", IdentifyMode::EditOnly),
    ] {
        rows.push(run(
            label.to_string(),
            EvalConfig {
                mode,
                ..base.clone()
            },
        ));
    }
    print!(
        "{}",
        tables::render(&["Pipeline", "Accuracy", "Discrim."], &rows)
    );
    println!(
        "\nreading: accuracy saturates around the paper's 12-packet F'; the negative\n\
         ratio trades rejection power against per-type recall; a handful of\n\
         references suffice for discrimination; and edit-only matches two-stage\n\
         accuracy at far higher identification cost (Table IV)."
    );
}
