use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A packet capture timestamp with microsecond resolution.
///
/// Timestamps are relative to an arbitrary capture epoch (for simulated
/// traffic, the start of the device setup run), matching the pcap
/// convention of seconds + microseconds.
///
/// ```
/// use sentinel_netproto::Timestamp;
/// use std::time::Duration;
///
/// let t = Timestamp::from_micros(1_500_000);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t + Duration::from_millis(500), Timestamp::from_micros(2_000_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The capture epoch (time zero).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from microseconds since the capture epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from milliseconds since the capture epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000)
    }

    /// Creates a timestamp from whole seconds since the capture epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Microseconds since the capture epoch.
    pub const fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds since the capture epoch, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The pcap `(seconds, microseconds)` pair.
    pub const fn to_pcap_parts(self) -> (u32, u32) {
        ((self.0 / 1_000_000) as u32, (self.0 % 1_000_000) as u32)
    }

    /// Reassembles a timestamp from pcap `(seconds, microseconds)` parts.
    pub const fn from_pcap_parts(secs: u32, micros: u32) -> Self {
        Timestamp(secs as u64 * 1_000_000 + micros as u64)
    }

    /// Elapsed time since an earlier timestamp.
    ///
    /// Returns [`Duration::ZERO`] if `earlier` is in the future, mirroring
    /// `Instant::saturating_duration_since`.
    pub fn saturating_since(&self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        self.saturating_since(rhs)
    }
}

impl From<Duration> for Timestamp {
    fn from(d: Duration) -> Self {
        Timestamp(d.as_micros() as u64)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcap_parts_roundtrip() {
        let t = Timestamp::from_micros(12_345_678);
        let (s, us) = t.to_pcap_parts();
        assert_eq!((s, us), (12, 345_678));
        assert_eq!(Timestamp::from_pcap_parts(s, us), t);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_millis(100);
        let later = t + Duration::from_millis(50);
        assert_eq!(later - t, Duration::from_millis(50));
        assert_eq!(t - later, Duration::ZERO, "saturating subtraction");
    }

    #[test]
    fn display_shows_seconds() {
        assert_eq!(Timestamp::from_micros(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert_eq!(Timestamp::ZERO, Timestamp::default());
    }
}
