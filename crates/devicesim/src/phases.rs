//! Setup-phase building blocks.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Destination selector for proprietary raw-protocol phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawDest {
    /// The gateway / local broadcast domain.
    Gateway,
    /// Local subnet broadcast.
    Broadcast,
    /// A profile endpoint by index.
    Endpoint(usize),
    /// A fixed multicast group.
    Multicast(Ipv4Addr),
}

/// One step of a device's setup procedure.
///
/// Each phase expands to the packets *sent by the device* (the gateway's
/// fingerprint only records device-originated traffic). Phases reference
/// remote endpoints by index into [`crate::DeviceProfile::endpoints`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// WPA2 4-way handshake: the device (supplicant) sends messages 2
    /// and 4.
    Eapol,
    /// DHCP DISCOVER + REQUEST with device-specific options. The option
    /// strings change the packet size, a strong fingerprint signal.
    Dhcp {
        /// Host name option (12), if the firmware sends one.
        hostname: Option<String>,
        /// Vendor class identifier option (60), if sent.
        vendor_class: Option<String>,
        /// Parameter request list option (55).
        param_list: Vec<u8>,
    },
    /// RFC 5227 ARP probes for the assigned address, optionally followed
    /// by a gratuitous announcement.
    ArpProbe {
        /// Number of probe packets.
        count: u8,
        /// Whether a gratuitous announcement follows.
        announce: bool,
    },
    /// IPv6 stack bring-up: MLDv2 report (with Router Alert + padding
    /// hop-by-hop options), optional router solicitation — exercises the
    /// ICMPv6 and IP-option fingerprint features.
    Ipv6Bringup {
        /// Group records in the MLD report.
        mld_records: u16,
        /// Whether a router solicitation is sent.
        router_solicit: bool,
    },
    /// DNS lookup of an endpoint via the gateway resolver.
    Dns {
        /// Endpoint index to resolve.
        endpoint: usize,
        /// Also query AAAA.
        aaaa: bool,
    },
    /// SNTP time synchronization.
    Ntp {
        /// Endpoint index of the NTP server.
        endpoint: usize,
        /// Number of request packets.
        count: u8,
    },
    /// A TLS session to a cloud endpoint: SYN, ClientHello, then
    /// application records of the given sizes.
    Tls {
        /// Endpoint index.
        endpoint: usize,
        /// Server port (443 for HTTPS; some vendors use odd ports).
        port: u16,
        /// ClientHello payload size.
        hello_size: u32,
        /// Application-data record sizes, one packet each.
        records: Vec<u32>,
    },
    /// A plain-HTTP GET (SYN + request).
    HttpGet {
        /// Endpoint index.
        endpoint: usize,
        /// Request target.
        path: String,
    },
    /// A plain-HTTP POST with a body (SYN + request).
    HttpPost {
        /// Endpoint index.
        endpoint: usize,
        /// Request target.
        path: String,
        /// Body size in bytes.
        body_size: u32,
    },
    /// SSDP `M-SEARCH` discovery probes.
    SsdpSearch {
        /// Search target header value.
        target: String,
        /// Number of probes.
        count: u8,
    },
    /// SSDP `NOTIFY ssdp:alive` announcements.
    SsdpNotify {
        /// UPnP device type announced.
        device_type: String,
        /// Number of announcements.
        count: u8,
    },
    /// mDNS service announcements.
    MdnsAnnounce {
        /// Service instance names announced (PTR records).
        services: Vec<String>,
    },
    /// An mDNS PTR query.
    MdnsQuery {
        /// Service name queried.
        service: String,
    },
    /// Proprietary protocol over TCP: SYN plus raw segments.
    TcpRaw {
        /// Destination.
        dest: RawDest,
        /// Destination port.
        port: u16,
        /// Segment payload sizes.
        sizes: Vec<u32>,
    },
    /// Proprietary protocol over UDP: raw datagrams.
    UdpRaw {
        /// Destination.
        dest: RawDest,
        /// Destination port.
        port: u16,
        /// Datagram payload sizes.
        sizes: Vec<u32>,
    },
    /// ICMP echo requests to the gateway (connectivity check).
    Ping {
        /// Number of echo requests.
        count: u8,
    },
    /// Spanning-tree BPDUs over 802.2 LLC — bridge-capable wired devices
    /// emit these while their Ethernet port negotiates (the Table I LLC
    /// feature).
    Stp {
        /// Number of BPDUs.
        count: u8,
    },
    /// Idle time between phases (drives the setup-end detector).
    Pause {
        /// Pause length in milliseconds.
        millis: u64,
    },
    /// A phase the firmware executes only sometimes (retries, optional
    /// discovery) — the per-run stochastic component.
    Optional {
        /// Execution probability in `[0, 1]`.
        prob: f64,
        /// The phase to maybe execute.
        phase: Box<Phase>,
    },
}

impl Phase {
    /// Wraps a phase so it executes with probability `prob` per run.
    pub fn optional(prob: f64, phase: Phase) -> Phase {
        Phase::Optional {
            prob,
            phase: Box::new(phase),
        }
    }

    /// A standard DHCP phase with the given hostname.
    pub fn dhcp(hostname: &str) -> Phase {
        Phase::Dhcp {
            hostname: Some(hostname.to_owned()),
            vendor_class: None,
            param_list: vec![1, 3, 6, 15, 28],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optional_wraps() {
        let phase = Phase::optional(0.5, Phase::Ping { count: 1 });
        match phase {
            Phase::Optional { prob, phase } => {
                assert_eq!(prob, 0.5);
                assert_eq!(*phase, Phase::Ping { count: 1 });
            }
            other => panic!("expected optional, got {other:?}"),
        }
    }

    #[test]
    fn dhcp_helper_sets_hostname() {
        match Phase::dhcp("Aria") {
            Phase::Dhcp { hostname, .. } => assert_eq!(hostname.as_deref(), Some("Aria")),
            other => panic!("expected dhcp, got {other:?}"),
        }
    }
}
