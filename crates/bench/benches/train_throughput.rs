//! Training throughput: the full 27-forest classifier bank (the
//! IoTSSP's cold-start cost, and the retraining cost when device-types
//! are added in bulk), plus the split-search ablation — histogram
//! sweeps over pre-binned columns (`RandomForest::fit`) against the
//! exact per-node sorted scan (`RandomForest::fit_exact`). Both paths
//! produce bit-identical forests (asserted in sentinel-ml's property
//! tests); only the node cost differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::{BankConfig, ClassifierBank, FingerprintDataset};
use sentinel_devicesim::catalog;
use sentinel_ml::{Dataset, ForestConfig, RandomForest};

/// The paper's per-type training shape: `n` positives + `10·n` negatives
/// over the 276 Table I features, binary labels.
fn per_type_dataset(rows: usize) -> Dataset {
    let mut data = Dataset::new(276);
    let mut row = vec![0.0; 276];
    for i in 0..rows {
        for (j, cell) in row.iter_mut().enumerate() {
            // Small-cardinality cells, like the real bit/port-class
            // features the histogram path exploits.
            *cell = ((i * 31 + j * 17) % 7) as f64;
        }
        data.push(&row, usize::from(i % 11 == 0));
    }
    data
}

fn bank_training(c: &mut Criterion) {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 21);
    let config = BankConfig {
        forest: ForestConfig::default().with_trees(50),
        ..BankConfig::default()
    };
    let mut group = c.benchmark_group("train_throughput");
    group.sample_size(10);
    group.bench_function("bank_27_forests", |b| {
        b.iter(|| ClassifierBank::train(&dataset, &config))
    });
    group.finish();
}

fn split_search(c: &mut Criterion) {
    let data = per_type_dataset(220);
    let config = ForestConfig::default().with_seed(1).with_threads(1);
    let mut group = c.benchmark_group("split_search");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("histogram", 220), &data, |b, data| {
        b.iter(|| RandomForest::fit(data, &config))
    });
    group.bench_with_input(BenchmarkId::new("exact", 220), &data, |b, data| {
        b.iter(|| RandomForest::fit_exact(data, &config))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bank_training, split_search
}
criterion_main!(benches);
