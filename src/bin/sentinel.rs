//! `sentinel` — command-line front end for the IoT Sentinel pipeline.
//!
//! ```text
//! sentinel devices                          list the device-type catalog
//! sentinel simulate <device> <out.pcap>     export a simulated setup capture
//! sentinel fingerprint <capture.pcap>       print the capture's fingerprint
//! sentinel train <model.json>               train and persist the identifier
//!          [--save <model.snap>]            (also/instead: binary snapshot)
//! sentinel identify <capture.pcap>          identify the device-type + verdict
//!          [--model <model.json>]           (reusing a persisted identifier)
//!          [--load <model.snap>]            (booting from a binary snapshot)
//! sentinel stream <capture.pcap>            stream an interleaved capture through
//!          [--capacity N] [--threads N]     the bounded onboarding runtime
//! sentinel stream --simulate N              …or a simulated N-device workload
//! ```
//!
//! `identify` and `stream` train the IoT Security Service on the
//! built-in catalog (20 setup runs per type, seed 42 — override with
//! `--runs`/`--seed`) unless `--model` points at a persisted identifier
//! or `--load` points at a binary snapshot (`sentinel-snapshot` format;
//! written by `train --save`). Snapshot boot skips training entirely and
//! restores a service that assesses bit-identically to the trained one.

use std::process::ExitCode;
use std::time::Duration;

use sentinel_core::{
    FingerprintDataset, Identifier, IoTSecurityService, SecurityService, ServiceConfig,
};
use sentinel_devicesim::{catalog, interleave, Testbed};
use sentinel_fingerprint::{extract, FixedFingerprint, FEATURE_NAMES};
use sentinel_netproto::pcap::PcapReader;
use sentinel_netproto::stream::MemorySource;
use sentinel_snapshot::{Snapshot, SnapshotBoot};
use sentinel_stream::{StreamConfig, StreamRuntime};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut runs: u64 = 20;
    let mut seed: u64 = 42;
    let mut run: u64 = 0;
    let mut standby = false;
    let mut model: Option<String> = None;
    let mut save: Option<String> = None;
    let mut load: Option<String> = None;
    let mut capacity: usize = 4096;
    let mut threads: usize = 0;
    let mut simulate_count: Option<usize> = None;
    let mut stagger_ms: u64 = 25;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--runs" => runs = parse_flag(iter.next(), "--runs"),
            "--seed" => seed = parse_flag(iter.next(), "--seed"),
            "--run" => run = parse_flag(iter.next(), "--run"),
            "--standby" => standby = true,
            "--model" => model = iter.next().cloned(),
            "--save" => save = iter.next().cloned(),
            "--load" => load = iter.next().cloned(),
            "--capacity" => capacity = parse_flag(iter.next(), "--capacity"),
            "--threads" => threads = parse_flag(iter.next(), "--threads"),
            "--simulate" => simulate_count = Some(parse_flag(iter.next(), "--simulate")),
            "--stagger-ms" => stagger_ms = parse_flag(iter.next(), "--stagger-ms"),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
            other => positional.push(other.to_owned()),
        }
    }
    let result = match positional.first().map(String::as_str) {
        Some("devices") => devices(),
        Some("simulate") => simulate(&positional[1..], run, seed, standby),
        Some("fingerprint") => fingerprint(&positional[1..]),
        Some("train") => train(&positional[1..], runs, seed, save.as_deref()),
        Some("identify") => identify(
            &positional[1..],
            runs,
            seed,
            model.as_deref(),
            load.as_deref(),
        ),
        Some("stream") => stream(
            &positional[1..],
            runs,
            seed,
            model.as_deref(),
            load.as_deref(),
            capacity,
            threads,
            simulate_count,
            stagger_ms,
        ),
        _ => {
            eprintln!(
                "usage: sentinel <devices|simulate|fingerprint|identify|stream> …\n\
                 \n  sentinel devices\
                 \n  sentinel simulate <device> <out.pcap> [--run N] [--seed S] [--standby]\
                 \n  sentinel fingerprint <capture.pcap>\
                 \n  sentinel train [model.json] [--save model.snap] [--runs N] [--seed S]\
                 \n  sentinel identify <capture.pcap> [--model model.json | --load model.snap] [--runs N] [--seed S]\
                 \n  sentinel stream <capture.pcap> [--model model.json | --load model.snap] [--capacity N] [--threads N]\
                 \n  sentinel stream --simulate N [--stagger-ms M] [--capacity N] [--threads N]"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flag<T: std::str::FromStr>(value: Option<&String>, name: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} needs a numeric value"))
}

fn devices() -> Result<(), Box<dyn std::error::Error>> {
    for device in catalog() {
        println!("{:<18} {}", device.info.identifier, device.info.model);
    }
    Ok(())
}

fn simulate(
    args: &[String],
    run: u64,
    seed: u64,
    standby: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let [device_name, out_path] = args else {
        return Err("usage: sentinel simulate <device> <out.pcap>".into());
    };
    let devices = catalog();
    let device = devices
        .iter()
        .find(|d| d.info.identifier.eq_ignore_ascii_case(device_name))
        .ok_or_else(|| format!("unknown device {device_name:?} (try `sentinel devices`)"))?;
    let testbed = Testbed::new(seed);
    let trace = if standby {
        testbed.standby_run(&device.profile, run, 3)
    } else {
        testbed.setup_run(&device.profile, run)
    };
    let file = std::fs::File::create(out_path)?;
    testbed.export_pcap(&trace, file)?;
    println!(
        "wrote {} packets ({} capture of {}, run {run}) to {out_path}",
        trace.packets.len(),
        if standby { "standby" } else { "setup" },
        device.info.identifier
    );
    Ok(())
}

fn read_capture(path: &str) -> Result<Vec<sentinel_netproto::Packet>, Box<dyn std::error::Error>> {
    let mut reader = PcapReader::new(std::fs::File::open(path)?)?;
    Ok(reader.read_all()?)
}

fn fingerprint(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let [path] = args else {
        return Err("usage: sentinel fingerprint <capture.pcap>".into());
    };
    let packets = read_capture(path)?;
    println!("{}: {} packets", path, packets.len());
    let full = extract(&packets);
    let fixed = FixedFingerprint::from_fingerprint(&full);
    println!(
        "fingerprint F: {} packet columns (consecutive duplicates removed)",
        full.len()
    );
    println!("fingerprint F': {} dimensions", fixed.dimensions());
    for (i, vector) in full.iter().take(12).enumerate() {
        println!(
            "  p{:<2} protocols [{}] size {} dst#{} ports {}/{}",
            i + 1,
            vector.protocols,
            vector.packet_size,
            vector.dst_ip_counter,
            vector.src_port_class.to_u8(),
            vector.dst_port_class.to_u8(),
        );
    }
    if full.len() > 12 {
        println!("  … {} more columns", full.len() - 12);
    }
    let _ = FEATURE_NAMES; // (feature order documented in sentinel-fingerprint)
    Ok(())
}

fn train(
    args: &[String],
    runs: u64,
    seed: u64,
    save: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let json_path = match (args, save) {
        ([path], _) => Some(path.as_str()),
        ([], Some(_)) => None,
        _ => return Err("usage: sentinel train [model.json] [--save model.snap]".into()),
    };
    eprintln!("training the identifier ({runs} runs/type, seed {seed})…");
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, runs, seed);
    let identifier = Identifier::train(&dataset, &Default::default());
    if let Some(out_path) = json_path {
        let file = std::fs::File::create(out_path)?;
        identifier.to_json_writer(std::io::BufWriter::new(file))?;
        println!(
            "wrote trained model ({} device-types) to {out_path}",
            identifier.type_names().len()
        );
    }
    if let Some(snap_path) = save {
        let service = IoTSecurityService::from_identifier(identifier);
        let snapshot = Snapshot::of_service(&service);
        snapshot.save(snap_path)?;
        let bytes = std::fs::metadata(snap_path)?.len();
        println!(
            "wrote binary snapshot ({} device-types, {bytes} bytes) to {snap_path}",
            service.identifier().type_names().len()
        );
    }
    Ok(())
}

/// Boots from a binary snapshot, loads a persisted JSON identifier, or
/// trains the service on the catalog.
fn build_service(
    model: Option<&str>,
    load: Option<&str>,
    runs: u64,
    seed: u64,
) -> Result<IoTSecurityService, Box<dyn std::error::Error>> {
    if let Some(snap_path) = load {
        eprintln!("booting from snapshot {snap_path}…");
        return Ok(IoTSecurityService::from_snapshot(snap_path)?);
    }
    match model {
        Some(model_path) => {
            eprintln!("loading trained model from {model_path}…");
            let file = std::fs::File::open(model_path)?;
            let identifier = Identifier::from_json_reader(std::io::BufReader::new(file))?;
            Ok(IoTSecurityService::from_identifier(identifier))
        }
        None => {
            eprintln!("training the IoT Security Service ({runs} runs/type, seed {seed})…");
            let devices = catalog();
            let dataset = FingerprintDataset::collect(&devices, runs, seed);
            Ok(IoTSecurityService::train(
                &dataset,
                &ServiceConfig::default(),
            ))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn stream(
    args: &[String],
    runs: u64,
    seed: u64,
    model: Option<&str>,
    load: Option<&str>,
    capacity: usize,
    threads: usize,
    simulate: Option<usize>,
    stagger_ms: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let service = build_service(model, load, runs, seed)?;
    let config = StreamConfig {
        max_sessions: capacity,
        threads,
        ..StreamConfig::default()
    };
    let mut runtime = StreamRuntime::with_config(service, config);
    let reports = match simulate {
        Some(n) => {
            let devices = catalog();
            let testbed = Testbed::new(seed ^ 0x57ea);
            let traces: Vec<_> = (0..n)
                .map(|i| {
                    let device = &devices[i % devices.len()];
                    testbed.setup_run(&device.profile, 1000 + (i / devices.len()) as u64)
                })
                .collect();
            let packets = interleave(&traces, Duration::from_millis(stagger_ms));
            eprintln!(
                "streaming {} interleaved simulated setups ({} packets)…",
                n,
                packets.len()
            );
            runtime.run(MemorySource::new(packets))?
        }
        None => {
            let [path] = args else {
                return Err("usage: sentinel stream <capture.pcap> (or --simulate N)".into());
            };
            eprintln!("streaming {path}…");
            // The zero-copy frame path: raw records replay through one
            // reused buffer and the wire scanner, never decoding a
            // Packet for certifiable frames (and never aborting on
            // malformed ones — a live tap's semantics).
            runtime.run_frames(PcapReader::new(std::fs::File::open(path)?)?)?
        }
    };
    for report in &reports {
        println!("{report}");
    }
    println!("\n{}", runtime.stats());
    Ok(())
}

fn identify(
    args: &[String],
    runs: u64,
    seed: u64,
    model: Option<&str>,
    load: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let [path] = args else {
        return Err("usage: sentinel identify <capture.pcap>".into());
    };
    let packets = read_capture(path)?;
    let service = build_service(model, load, runs, seed)?;
    let full = extract(&packets);
    let fixed = FixedFingerprint::from_fingerprint(&full);
    let response = service.assess(&full, &fixed);
    println!("identification: {}", response.identification);
    println!("isolation level: {}", response.isolation);
    if !response.permitted_endpoints.is_empty() {
        println!("permitted endpoints: {:?}", response.permitted_endpoints);
    }
    if let Some(notice) = &response.user_notification {
        println!("USER ACTION REQUIRED: {notice}");
    }
    Ok(())
}
