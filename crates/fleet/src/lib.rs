//! `sentinel-fleet`: multi-gateway fleet simulation.
//!
//! The paper evaluates one Security Gateway on one home network
//! (Sect. V). Deployed at an ISP or smart-building scale, Sentinel is a
//! *fleet*: hundreds of home networks, each with its own SDN switch and
//! its own gateway, all classifying against one shared trained model.
//! This crate simulates that deployment shape end to end:
//!
//! * [`FleetConfig`] — fleet shape and storm knobs: homes, devices per
//!   home, join waves, tick length, roam/leave cadence, seed, threads.
//! * [`run_fleet`] — instantiates `homes` independent home networks.
//!   Each gets the Fig. 4 lab [`sentinel_sdn::topology::Topology`] and
//!   its own gateway ([`sentinel_stream::StreamRuntime`] +
//!   [`sentinel_sdn::EnforcementModule`]), then runs a deterministic
//!   tick loop: devices join in staggered onboarding storms, some leave
//!   (rule removal) one tick after onboarding, and some roam to the
//!   neighbouring home mid-setup, finishing their device setup there.
//! * [`FleetReport`] / [`FleetStats`] — per-home outcomes plus fleet
//!   totals. Counters are **summed** (cache hit ratio from summed
//!   hits/lookups, never averaged per-gateway ratios); the one max is
//!   `max_home_peak_resident`.
//!
//! # Determinism
//!
//! A home's workload is a pure function of `(config, home index)`, each
//! home gateway runs the exact single-threaded streaming path, and the
//! v2 keyed RNG contract makes every assessment a pure function of
//! `(model, fingerprints, key)`. Fleet parallelism is *across* homes
//! via deterministic fork/join, so a run is bit-identical for any
//! `SENTINEL_THREADS`, any `threads` setting and any home-evaluation
//! order.
//!
//! # Example
//!
//! ```
//! use sentinel_core::{FingerprintDataset, IoTSecurityService, ServiceConfig};
//! use sentinel_devicesim::catalog;
//! use sentinel_fleet::{run_fleet, FleetConfig};
//!
//! // Train the shared IoTSSP model once.
//! let devices: Vec<_> = catalog().into_iter().take(3).collect();
//! let dataset = FingerprintDataset::collect(&devices, 8, 42);
//! let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());
//!
//! // Simulate a small fleet: 6 homes, 3 devices each.
//! let config = FleetConfig {
//!     homes: 6,
//!     devices_per_home: 3,
//!     ..FleetConfig::default()
//! };
//! let report = run_fleet(&service, &config);
//! assert_eq!(report.homes.len(), 6);
//! assert_eq!(report.stats.onboarded, report.stats.rules_installed);
//! assert!(report.stats.roams > 0);
//! // Identical fleet, any thread count: bit-equal report.
//! let again = run_fleet(&service, &FleetConfig { threads: 2, ..config });
//! assert_eq!(report, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod sim;
mod stats;
pub mod workload;

pub use config::FleetConfig;
pub use sim::{
    roamer_route, run_fleet, run_fleet_with_metrics, run_home, FleetReport, HomeOutcome,
};
pub use stats::{FleetMetrics, FleetStats};
