//! IEEE 802.2 Logical Link Control.
//!
//! LLC frames (Ethernet frames with a length field instead of an
//! EtherType) are one of the two link-layer protocol features in the
//! paper's Table I. Hub-style IoT gateways (e.g. spanning-tree BPDUs from
//! bridge-capable devices) emit them during setup.

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of the basic (8-bit control) LLC header.
pub const HEADER_LEN: usize = 3;

/// Well-known LLC SAP (service access point) values.
pub mod sap {
    /// Spanning Tree Protocol BPDU.
    pub const STP: u8 = 0x42;
    /// Subnetwork Access Protocol (SNAP) extension.
    pub const SNAP: u8 = 0xaa;
    /// NetBIOS.
    pub const NETBIOS: u8 = 0xf0;
}

/// An IEEE 802.2 LLC header with unnumbered-format (8-bit) control field.
///
/// ```
/// use sentinel_netproto::llc::{LlcHeader, sap};
///
/// let hdr = LlcHeader::new(sap::STP, sap::STP, 0x03);
/// let mut buf = Vec::new();
/// hdr.encode(&mut buf);
/// let (parsed, _) = LlcHeader::parse(&buf).unwrap();
/// assert_eq!(parsed, hdr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LlcHeader {
    /// Destination service access point.
    pub dsap: u8,
    /// Source service access point.
    pub ssap: u8,
    /// Control field (0x03 = unnumbered information).
    pub control: u8,
}

impl LlcHeader {
    /// Creates an LLC header.
    pub fn new(dsap: u8, ssap: u8, control: u8) -> Self {
        LlcHeader {
            dsap,
            ssap,
            control,
        }
    }

    /// An unnumbered-information header for the given SAP on both sides.
    pub fn unnumbered(sap: u8) -> Self {
        LlcHeader::new(sap, sap, 0x03)
    }

    /// Appends the 3 header bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.dsap);
        buf.put_u8(self.ssap);
        buf.put_u8(self.control);
    }

    /// Parses an LLC header, returning it and the remaining payload.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if fewer than 3 bytes are given.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("llc", HEADER_LEN, bytes.len()));
        }
        Ok((
            LlcHeader {
                dsap: bytes[0],
                ssap: bytes[1],
                control: bytes[2],
            },
            &bytes[HEADER_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = LlcHeader::unnumbered(sap::STP);
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf, vec![0x42, 0x42, 0x03]);
        let (parsed, rest) = LlcHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert!(rest.is_empty());
    }

    #[test]
    fn truncated_input_rejected() {
        assert!(matches!(
            LlcHeader::parse(&[0x42, 0x42]).unwrap_err(),
            ParseError::Truncated { layer: "llc", .. }
        ));
    }
}
