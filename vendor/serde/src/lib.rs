//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this crate round-trips every
//! serializable type through an in-memory [`Value`] tree; `serde_json`
//! then renders/parses that tree as JSON text. The public names
//! (`Serialize`, `Deserialize`, the derive re-exports) match real serde
//! so workspace code compiles unchanged.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// An in-memory serialization tree (a superset of JSON's data model on
/// the integer side: signed and unsigned 64-bit are kept distinct).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Looks up a key in an object value (used by derived impls).
pub fn obj_get<'v>(value: &'v Value, key: &str) -> Result<&'v Value, Error> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
        _ => Err(Error::custom(format!(
            "expected object while reading field `{key}`"
        ))),
    }
}

/// Checks that a value is an array of exactly `len` elements (used by
/// derived impls for tuple structs/variants).
pub fn as_array(value: &Value, len: usize) -> Result<&[Value], Error> {
    match value {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected array of {len} elements, found {}",
            items.len()
        ))),
        _ => Err(Error::custom("expected array")),
    }
}

// -------------------------------------------------------------- integers

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(v) => *v,
                    Value::I64(v) if *v >= 0 => *v as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(v) => *v,
                    Value::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

// ---------------------------------------------------------------- floats

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(v) => Ok(*v),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ----------------------------------------------------- containers/generic

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($idx:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                let items = as_array(value, LEN)?;
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------- maps and sets

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is deterministic across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for HashSet<String> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&String> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(|s| s.to_value()).collect())
    }
}

impl Deserialize for HashSet<String> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<String>::from_value(value).map(|items| items.into_iter().collect())
    }
}

// --------------------------------------------------------- network addrs

macro_rules! impl_serde_display_fromstr {
    ($($t:ty => $what:literal),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::String(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::String(s) => s
                        .parse()
                        .map_err(|_| Error::custom(concat!("invalid ", $what))),
                    _ => Err(Error::custom(concat!("expected ", $what, " string"))),
                }
            }
        }
    )*};
}

impl_serde_display_fromstr! {
    std::net::Ipv4Addr => "IPv4 address",
    std::net::Ipv6Addr => "IPv6 address",
    std::net::IpAddr => "IP address",
    std::net::SocketAddr => "socket address"
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(<[u8; 2]>::from_value(&[9u8, 8].to_value()).unwrap(), [9, 8]);
    }

    #[test]
    fn addrs_roundtrip() {
        let ip: std::net::Ipv4Addr = "192.168.0.1".parse().unwrap();
        assert_eq!(std::net::Ipv4Addr::from_value(&ip.to_value()).unwrap(), ip);
        let any: std::net::IpAddr = "fe80::1".parse().unwrap();
        assert_eq!(std::net::IpAddr::from_value(&any.to_value()).unwrap(), any);
    }

    #[test]
    fn maps_sort_keys() {
        let mut map = HashMap::new();
        map.insert("b".to_string(), 2u32);
        map.insert("a".to_string(), 1u32);
        match map.to_value() {
            Value::Object(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let back = HashMap::<String, u32>::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
    }
}
