//! Packet substrate for the IoT Sentinel reproduction.
//!
//! This crate models the network traffic that IoT Sentinel's Security
//! Gateway observes on its WiFi and Ethernet interfaces: a layered
//! [`Packet`] representation covering every protocol the paper's
//! fingerprint features reference (Table I), wire-format encoding and
//! parsing for all of them, a pcap reader/writer so fingerprints can be
//! extracted from real captures, and protocol classification
//! ([`ProtocolSet`]) used by the fingerprinting stage.
//!
//! # Layering
//!
//! A [`Packet`] is an Ethernet frame whose body is one of the link-adjacent
//! protocols (ARP, EAPoL, LLC) or an IP datagram ([`PacketBody`]). IP
//! datagrams carry a [`Transport`] (TCP, UDP, ICMP, ICMPv6), and TCP/UDP
//! segments carry an [`AppPayload`] (DHCP/BOOTP, DNS/mDNS, HTTP, SSDP, TLS,
//! NTP, or raw bytes).
//!
//! # Example
//!
//! ```
//! use sentinel_netproto::{Packet, MacAddr, Protocol};
//!
//! # fn main() -> Result<(), sentinel_netproto::ParseError> {
//! let device = MacAddr::new([0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2]);
//! let discover = Packet::dhcp_discover(device, 0x1234_5678, 0);
//! let bytes = discover.encode();
//! let parsed = Packet::parse(&bytes, discover.timestamp)?;
//! assert_eq!(parsed.src_mac(), device);
//! assert!(parsed.protocols().contains(Protocol::Dhcp));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod classify;
pub mod dhcp;
pub mod dns;
pub mod eapol;
mod error;
pub mod ethernet;
pub mod http;
pub mod icmp;
pub mod icmpv6;
pub mod ipv4;
pub mod ipv6;
pub mod llc;
mod mac;
pub mod ntp;
pub mod packet;
pub mod pcap;
pub mod ports;
pub mod scan;
pub mod ssdp;
pub mod stream;
pub mod tcp;
mod timestamp;
pub mod tls;
pub mod udp;

pub use classify::{Protocol, ProtocolSet};
pub use error::ParseError;
pub use ethernet::{EtherType, EthernetHeader};
pub use mac::MacAddr;
pub use packet::{AppPayload, Packet, PacketBody, Transport};
pub use scan::{RawFeatures, ScanOutcome, WireScan};
pub use timestamp::Timestamp;
