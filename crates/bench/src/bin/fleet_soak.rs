//! Fleet-scale multi-gateway soak: ≥ 1000 home networks, each with its
//! own switch and Sentinel gateway, onboarding staggered device storms
//! (with leaves and mid-setup roaming) against one shared trained
//! model, swept over fleet worker-thread counts.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin fleet_soak
//! cargo run --release -p sentinel-bench --bin fleet_soak -- --smoke --threads 1,2
//! cargo run --release -p sentinel-bench --bin fleet_soak -- \
//!     --homes 2000 --devices 6 --threads 1,2,4 --json results/bench_fleet.json
//! ```
//!
//! Before any throughput number is reported, the bench asserts the
//! fleet determinism contract: a cache-off reference run and every
//! cache-on thread count must reproduce one `FleetReport` byte for
//! byte, the stage-1 verdict cache must actually get hit, and the
//! certified wire scanner must have handled every frame (zero decode
//! fallbacks). The headline sweep runs with the verdict cache enabled —
//! the deployment shape of a fleet sharing one model.

use std::time::Instant;

use sentinel_bench::cli::Args;
use sentinel_bench::tables;
use sentinel_core::{
    BankConfig, FingerprintDataset, IdentifierConfig, IoTSecurityService, ServiceConfig,
};
use sentinel_devicesim::catalog;
use sentinel_fleet::{run_fleet_with_metrics, FleetConfig};
use sentinel_ml::ForestConfig;

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let homes: usize = args.get("homes", if smoke { 40 } else { 1000 });
    let devices_per_home: usize = args.get("devices", 4);
    let train_runs: u64 = args.get("train-runs", if smoke { 5 } else { 10 });
    let trees: usize = args.get("trees", 25);
    let seed: u64 = args.get("seed", 42);
    let threads: Vec<usize> = args
        .get_str("threads")
        .unwrap_or(if smoke { "1,2" } else { "1,2,4" })
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| panic!("invalid thread count in --threads: {t:?}"))
        })
        .collect();
    assert!(!threads.is_empty(), "--threads needs at least one count");

    print!(
        "{}",
        tables::banner("Fleet soak — multi-gateway onboarding storms, leaves and roaming")
    );
    println!(
        "{homes} homes x {devices_per_home} devices, one shared model, \
         thread sweep {threads:?}\n"
    );

    // --- Train the shared IoTSSP once (outside the measured window). ---
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let service_config = ServiceConfig {
        identifier: IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(trees),
                ..BankConfig::default()
            },
            ..IdentifierConfig::default()
        },
    };
    let mut service = IoTSecurityService::train(&dataset, &service_config);

    let fleet_config = |t: usize| FleetConfig {
        homes,
        devices_per_home,
        seed,
        threads: t,
        ..FleetConfig::default()
    };
    let scan_contract = |report: &sentinel_fleet::FleetReport, label: &str| {
        assert_eq!(report.stats.frames_decoded, 0, "decode fallback ({label})");
        assert_eq!(report.stats.frames_malformed, 0, "malformed frame ({label})");
    };

    // --- Cache-off reference: the uncached exact path, timed, and the
    // --- byte oracle every cached run must reproduce.
    let start = Instant::now();
    let (reference, _) = run_fleet_with_metrics(&service, &fleet_config(threads[0]));
    let off_elapsed = start.elapsed();
    scan_contract(&reference, "cache off");
    let reference_bytes = serde_json::to_vec(&reference).expect("report serialize");
    println!(
        "cache off : {homes} gateways in {:8.1} ms  {:>8.1} homes/s  (byte oracle)",
        off_elapsed.as_secs_f64() * 1e3,
        homes as f64 / off_elapsed.as_secs_f64()
    );

    // --- The measured fleet runs, one per thread count, verdict cache
    // --- on (each run also re-proves cache-on == cache-off, byte for
    // --- byte, before its throughput means anything).
    service.enable_verdict_cache(true);
    let mut records = Vec::new();
    let mut base_pps: Option<f64> = None;
    let mut rows_per_batch = 0.0f64;
    for &t in &threads {
        let (hits_before, lookups_before) = service.verdict_cache_stats();
        let start = Instant::now();
        let (report, metrics) = run_fleet_with_metrics(&service, &fleet_config(t));
        let elapsed = start.elapsed();
        let (hits_after, lookups_after) = service.verdict_cache_stats();

        let bytes = serde_json::to_vec(&report).expect("report serialize");
        let homes_per_sec = homes as f64 / elapsed.as_secs_f64();
        let pps = report.stats.packets_in as f64 / elapsed.as_secs_f64();

        scan_contract(&report, &format!("{t} threads"));
        assert_eq!(
            bytes, reference_bytes,
            "verdict cache or thread count changed the report at {t} threads"
        );
        let (hits, lookups) = (hits_after - hits_before, lookups_after - lookups_before);
        assert_eq!(
            lookups, report.stats.onboarded,
            "every assessed completion must consult the verdict cache"
        );
        if hits_before > 0 || !records.is_empty() {
            // Every fingerprint of a repeated fleet run is already cached.
            assert_eq!(
                hits, lookups,
                "a warm verdict cache must serve every repeated completion"
            );
        }
        rows_per_batch = metrics.rows_per_batch();
        let speedup = match base_pps {
            None => {
                base_pps = Some(pps);
                1.0
            }
            Some(base) => pps / base,
        };

        println!(
            "threads {t:>2}: {homes} gateways in {:8.1} ms  {homes_per_sec:>8.1} homes/s  \
             {pps:>10.0} pps  speedup {speedup:.2}x  verdict cache {hits}/{lookups}",
            elapsed.as_secs_f64() * 1e3
        );
        records.push(format!(
            "    {{\"threads\": {t}, \"elapsed_ms\": {:.3}, \"homes_per_sec\": {:.1}, \
             \"packets_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"cache_hits\": {hits}, \"cache_lookups\": {lookups}, \
             \"batched_rows_per_tick\": {:.1}}}",
            elapsed.as_secs_f64() * 1e3,
            homes_per_sec,
            pps,
            speedup,
            rows_per_batch
        ));
    }

    let stats = &reference.stats;
    println!("\nfleet               {stats}");
    println!(
        "identification      {}/{} identified ({:.1}%)",
        stats.identified,
        stats.onboarded,
        100.0 * stats.identified as f64 / stats.onboarded.max(1) as f64
    );
    println!(
        "enforcement         {} rules installed, {} removed, {} resident, \
         cache hit ratio {:.3}",
        stats.rules_installed,
        stats.rules_removed,
        stats.rules_resident,
        stats.hit_ratio()
    );
    let (total_hits, total_lookups) = service.verdict_cache_stats();
    assert!(
        total_hits > 0,
        "a sweep over one shared model must hit the verdict cache at least once"
    );
    println!(
        "verdict cache       {total_hits}/{total_lookups} stage-1 hits across the sweep, \
         {rows_per_batch:.0} rows per assessment batch"
    );

    if let Some(path) = args.get_str("json") {
        let stats_json = serde_json::to_string(stats).expect("stats serialize");
        let json = format!(
            "{{\n  \"bench\": \"fleet_soak\",\n  \"homes\": {homes},\n  \
             \"devices_per_home\": {devices_per_home},\n  \"train_runs\": {train_runs},\n  \
             \"seed\": {seed},\n  \"cache_off_elapsed_ms\": {:.3},\n  \"runs\": [\n{}\n  ],\n  \
             \"stats\": {stats_json}\n}}\n",
            off_elapsed.as_secs_f64() * 1e3,
            records.join(",\n"),
        );
        sentinel_bench::results::write_json(path, &json);
    }
}
