//! ICMPv6 (RFC 4443) including the Neighbor Discovery and MLD message
//! types IoT devices emit while bringing up their IPv6 stack.

use bytes::{BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::ipv4::internet_checksum;
use crate::ParseError;

/// Length of the fixed ICMPv6 header.
pub const HEADER_LEN: usize = 4;

/// ICMPv6 message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Icmpv6Type {
    /// Echo request (128).
    EchoRequest,
    /// Echo reply (129).
    EchoReply,
    /// Multicast Listener Report (131).
    MulticastListenerReport,
    /// Multicast Listener Report v2 (143).
    MulticastListenerReportV2,
    /// Router solicitation (133).
    RouterSolicitation,
    /// Neighbor solicitation (135).
    NeighborSolicitation,
    /// Neighbor advertisement (136).
    NeighborAdvertisement,
    /// Any other type.
    Other(u8),
}

impl Icmpv6Type {
    /// The raw type byte.
    pub fn to_u8(self) -> u8 {
        match self {
            Icmpv6Type::EchoRequest => 128,
            Icmpv6Type::EchoReply => 129,
            Icmpv6Type::MulticastListenerReport => 131,
            Icmpv6Type::RouterSolicitation => 133,
            Icmpv6Type::NeighborSolicitation => 135,
            Icmpv6Type::NeighborAdvertisement => 136,
            Icmpv6Type::MulticastListenerReportV2 => 143,
            Icmpv6Type::Other(v) => v,
        }
    }

    /// Classifies a raw type byte.
    pub fn from_u8(v: u8) -> Self {
        match v {
            128 => Icmpv6Type::EchoRequest,
            129 => Icmpv6Type::EchoReply,
            131 => Icmpv6Type::MulticastListenerReport,
            133 => Icmpv6Type::RouterSolicitation,
            135 => Icmpv6Type::NeighborSolicitation,
            136 => Icmpv6Type::NeighborAdvertisement,
            143 => Icmpv6Type::MulticastListenerReportV2,
            v => Icmpv6Type::Other(v),
        }
    }
}

/// An ICMPv6 message.
///
/// The checksum over the IPv6 pseudo-header is computed by the packet
/// encoder (it needs the addresses); standalone encoding writes a zero
/// checksum and parsing does not verify it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Icmpv6Message {
    /// Message type.
    pub icmp_type: Icmpv6Type,
    /// Message code.
    pub code: u8,
    /// Message body (after the checksum).
    pub body: Bytes,
}

impl Icmpv6Message {
    /// Creates a message.
    pub fn new(icmp_type: Icmpv6Type, code: u8, body: impl Into<Bytes>) -> Self {
        Icmpv6Message {
            icmp_type,
            code,
            body: body.into(),
        }
    }

    /// A router solicitation (sent to `ff02::2` during SLAAC bring-up).
    pub fn router_solicitation() -> Self {
        Icmpv6Message::new(Icmpv6Type::RouterSolicitation, 0, vec![0u8; 4])
    }

    /// A neighbor solicitation for duplicate address detection.
    pub fn neighbor_solicitation(target: std::net::Ipv6Addr) -> Self {
        let mut body = vec![0u8; 4];
        body.extend_from_slice(&target.octets());
        Icmpv6Message::new(Icmpv6Type::NeighborSolicitation, 0, body)
    }

    /// An MLDv2 multicast listener report for `n_records` group records.
    pub fn mld2_report(n_records: u16) -> Self {
        let mut body = vec![0u8, 0u8]; // reserved
        body.extend_from_slice(&n_records.to_be_bytes());
        // Each record: type(1) aux(1) sources(2) group(16) — synthetic fill.
        body.extend(std::iter::repeat_n(0u8, n_records as usize * 20));
        Icmpv6Message::new(Icmpv6Type::MulticastListenerReportV2, 0, body)
    }

    /// Wire length of the encoded message.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.body.len()
    }

    /// Appends the message bytes to `buf` with a checksum over the given
    /// IPv6 pseudo-header fields.
    pub fn encode(&self, buf: &mut impl BufMut, src: std::net::Ipv6Addr, dst: std::net::Ipv6Addr) {
        let mut raw = Vec::with_capacity(self.wire_len());
        raw.put_u8(self.icmp_type.to_u8());
        raw.put_u8(self.code);
        raw.put_u16(0);
        raw.put_slice(&self.body);
        let mut pseudo = Vec::with_capacity(40 + raw.len());
        pseudo.extend_from_slice(&src.octets());
        pseudo.extend_from_slice(&dst.octets());
        pseudo.put_u32(raw.len() as u32);
        pseudo.put_u32(58); // next header
        pseudo.extend_from_slice(&raw);
        let checksum = internet_checksum(&pseudo);
        raw[2..4].copy_from_slice(&checksum.to_be_bytes());
        buf.put_slice(&raw);
    }

    /// Parses an ICMPv6 message (checksum not verified here; the packet
    /// parser lacks pseudo-header context at this layer boundary).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] on short input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("icmpv6", HEADER_LEN, bytes.len()));
        }
        Ok(Icmpv6Message {
            icmp_type: Icmpv6Type::from_u8(bytes[0]),
            code: bytes[1],
            body: Bytes::copy_from_slice(&bytes[HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    #[test]
    fn roundtrip() {
        let msg = Icmpv6Message::router_solicitation();
        let mut buf = Vec::new();
        msg.encode(&mut buf, Ipv6Addr::UNSPECIFIED, "ff02::2".parse().unwrap());
        assert_eq!(Icmpv6Message::parse(&buf).unwrap(), msg);
    }

    #[test]
    fn mld_report_scales_with_records() {
        let one = Icmpv6Message::mld2_report(1);
        let three = Icmpv6Message::mld2_report(3);
        assert_eq!(three.body.len() - one.body.len(), 40);
    }

    #[test]
    fn neighbor_solicitation_embeds_target() {
        let target: Ipv6Addr = "fe80::1234".parse().unwrap();
        let msg = Icmpv6Message::neighbor_solicitation(target);
        assert_eq!(&msg.body[4..20], &target.octets());
    }

    #[test]
    fn type_byte_roundtrip() {
        for raw in [128u8, 129, 131, 133, 135, 136, 143, 200] {
            assert_eq!(Icmpv6Type::from_u8(raw).to_u8(), raw);
        }
    }
}
