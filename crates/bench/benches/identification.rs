//! Criterion micro-benchmarks for the Table IV identification stages:
//! fingerprint extraction, single-classifier decision, full 27-type
//! classification, edit-distance discrimination and end-to-end
//! identification.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use sentinel_core::{FingerprintDataset, Identifier, IdentifierConfig};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::editdist::normalized_distance;
use sentinel_fingerprint::{extract, FixedFingerprint};

fn identification(c: &mut Criterion) {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 20, 42);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let holdout = Testbed::new(7);

    // A held-out trace of a confusable type (exercises discrimination).
    let twin_trace = holdout.setup_run(&devices[25].profile, 0);
    let twin_full = extract(&twin_trace.packets);
    let twin_fixed = FixedFingerprint::from_fingerprint(&twin_full);
    // And of an easy type (classifier-only path).
    let easy_trace = holdout.setup_run(&devices[4].profile, 0);
    let easy_full = extract(&easy_trace.packets);
    let easy_fixed = FixedFingerprint::from_fingerprint(&easy_full);

    let mut group = c.benchmark_group("table4");
    group.bench_function("fingerprint_extraction", |b| {
        b.iter_batched(
            || twin_trace.packets.clone(),
            |packets| {
                let full = extract(&packets);
                FixedFingerprint::from_fingerprint(&full)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("one_classification", |b| {
        b.iter(|| {
            identifier
                .bank()
                .accepts(0, std::hint::black_box(&easy_fixed))
        })
    });
    group.bench_function("27_classifications", |b| {
        b.iter(|| identifier.bank().matches(std::hint::black_box(&easy_fixed)))
    });
    group.bench_function("one_edit_distance", |b| {
        b.iter(|| normalized_distance(std::hint::black_box(&twin_full), dataset.full(0)))
    });
    group.bench_function("identify_easy_type", |b| {
        b.iter(|| identifier.identify(std::hint::black_box(&easy_full), &easy_fixed))
    });
    group.bench_function("identify_confusable_type", |b| {
        b.iter(|| identifier.identify(std::hint::black_box(&twin_full), &twin_fixed))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = identification
}
criterion_main!(benches);
