//! Row-blocked, data-parallel inference kernels over [`PackedForest`]
//! arenas.
//!
//! The per-row batch entry ([`PackedForest::accepts_batch`]) already
//! fixes the *inter-forest* access pattern — one arena is walked by
//! every row back-to-back — but each row still chases pointers through
//! the tree alone, and every caller rebuilds a `Vec<&[f64]>` of row
//! pointers per tick. The kernels in this module fix the *intra-forest*
//! pattern:
//!
//! * [`BatchMatrix`] copies a batch once into one reusable contiguous
//!   **row-major** scratch (`values[row * features + feature]`) —
//!   no per-tick row-pointer vectors, no per-row slice indirection,
//!   and the backing allocation is retained across refills. (A
//!   feature-major transpose was measured too: tree paths diverge
//!   after the first split, so column reads scatter just like row
//!   reads, and the strided transpose itself cost more than a row
//!   copy — row-major won on the 276-feature fingerprint corpus.)
//! * The block walk advances `R` rows through one tree in lockstep over
//!   `u32` lane/cursor vectors with branchless child selection
//!   (`kids[usize::from(value > threshold)]`), so the independent node
//!   loads overlap and the lane loop is autovectorization-friendly over
//!   both the `Wide` and `Narrow` arenas. Lanes that reach a leaf vote
//!   immediately and are compacted out, so a block walks at each lane's
//!   own depth, not the deepest lane's.
//! * Votes accumulate in per-row packed `u32` counters, and the
//!   mathematically-decided early exit of the scalar path is kept
//!   **per lane**: after every tree, rows whose verdict is already
//!   mathematically decided (vote count at the majority threshold, or
//!   unable to reach it even by winning every remaining tree) are
//!   compacted out of the active set. Each row therefore walks *exactly*
//!   the trees the scalar [`PackedForest::accepts`] would walk, its
//!   counter freezes at the same value, and the final verdicts are
//!   bit-identical.
//!
//! [`PackedForest`]: crate::PackedForest
//! [`PackedForest::accepts`]: crate::PackedForest::accepts
//! [`PackedForest::accepts_batch`]: crate::PackedForest::accepts_batch

use crate::packed::ArenaNode;

/// Recommended rows per block for the `_blocked` entry points
/// ([`PackedForest::accepts_rows_blocked`]): wide enough that per-lane
/// compaction bookkeeping amortizes across many in-flight walks
/// (32 lanes measured fastest in the `forest_kernels` sweep), while
/// the lane/cursor vectors still fit comfortably in L1.
///
/// [`PackedForest::accepts_rows_blocked`]: crate::PackedForest::accepts_rows_blocked
pub const BLOCK: usize = 32;

/// A reusable contiguous copy of one batch of rows.
///
/// `fill` copies a batch in once per tick; the kernels then read
/// `value(feature, row)` without per-row slice indirection. The
/// backing allocation is retained across refills, so a steady-state
/// caller that holds a `BatchMatrix` performs no per-tick heap
/// allocations.
#[derive(Debug, Default, Clone)]
pub struct BatchMatrix {
    /// Row-major values: `values[row * features + feature]`.
    values: Vec<f64>,
    rows: usize,
    features: usize,
}

impl BatchMatrix {
    /// An empty matrix (0 rows, 0 features).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a matrix from `rows` (a convenience wrapper over
    /// [`BatchMatrix::fill`]).
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
        I::IntoIter: ExactSizeIterator,
    {
        let mut matrix = Self::default();
        matrix.fill(rows);
        matrix
    }

    /// Refills the matrix from `rows` in place. The backing allocation
    /// is reused when capacity suffices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all share one width.
    pub fn fill<'a, I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = &'a [f64]>,
        I::IntoIter: ExactSizeIterator,
    {
        let iter = rows.into_iter();
        let n = iter.len();
        self.rows = n;
        self.features = 0;
        self.values.clear();
        for (row, cells) in iter.enumerate() {
            if row == 0 {
                self.features = cells.len();
                self.values.reserve(self.features * n);
            }
            assert_eq!(
                cells.len(),
                self.features,
                "batch rows must all share one width"
            );
            self.values.extend_from_slice(cells);
        }
    }

    /// Number of rows in the current batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width of the current batch.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Whether the current batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The value of `feature` for `row`.
    #[inline]
    pub fn value(&self, feature: usize, row: usize) -> f64 {
        debug_assert!(row < self.rows, "row {row} out of {}", self.rows);
        self.values[row * self.features + feature]
    }

    /// The full feature row at `row`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        &self.values[row * self.features..(row + 1) * self.features]
    }

    /// Empties the matrix in place, keeping the backing allocation.
    ///
    /// Pairs with [`BatchMatrix::push_row`] for callers that build a
    /// batch incrementally (e.g. only the rows a cache did not already
    /// answer) instead of from one [`BatchMatrix::fill`] iterator.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.features = 0;
        self.values.clear();
    }

    /// Appends one row to the current batch, reusing capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not match the width of the rows already
    /// in the batch.
    pub fn push_row(&mut self, cells: &[f64]) {
        if self.rows == 0 {
            self.features = cells.len();
        }
        assert_eq!(
            cells.len(),
            self.features,
            "batch rows must all share one width"
        );
        self.values.extend_from_slice(cells);
        self.rows += 1;
    }
}

/// Walks the `active` lanes (matrix-row offsets from `base`) through
/// the tree rooted at `root` in lockstep, calling `vote(lane, class)`
/// the moment a lane reaches its leaf. Leaf-bound lanes are compacted
/// out each level, so the walk narrows to the lanes still descending
/// instead of re-checking finished ones until the deepest lane lands.
#[inline]
fn walk_block<N: ArenaNode, const R: usize>(
    nodes: &[N],
    root: u32,
    matrix: &BatchMatrix,
    base: usize,
    active: &[u32],
    mut vote: impl FnMut(usize, u32),
) {
    let mut lanes = [0u32; R];
    lanes[..active.len()].copy_from_slice(active);
    let mut cursors = [root; R];
    let mut walking = active.len();
    while walking > 0 {
        let mut keep = 0usize;
        for slot in 0..walking {
            let lane = lanes[slot];
            let me = cursors[slot];
            let node = &nodes[me as usize];
            let (next, advanced) = node.step(me, |feature| {
                matrix.value(feature as usize, base + lane as usize)
            });
            if advanced {
                lanes[keep] = lane;
                cursors[keep] = next;
                keep += 1;
            } else {
                vote(lane as usize, node.class());
            }
        }
        walking = keep;
    }
}

/// Blocked binary acceptance: appends one verdict per matrix row to
/// `out`, bit-identical to the scalar `accepts_in` per row.
pub(crate) fn accepts_rows_in<N: ArenaNode, const R: usize>(
    nodes: &[N],
    roots: &[u32],
    matrix: &BatchMatrix,
    out: &mut Vec<bool>,
) {
    let n = roots.len();
    // Ties go to class 0, so class 1 needs a strict majority.
    let needed = (n / 2 + 1) as u32;
    let rows = matrix.rows();
    let mut base = 0usize;
    while base < rows {
        let live = R.min(rows - base);
        let mut ones = [0u32; R];
        let mut active = [0u32; R];
        for (lane, slot) in active.iter_mut().enumerate().take(live) {
            *slot = lane as u32;
        }
        let mut undecided = live;
        for (walked, &root) in roots.iter().enumerate() {
            {
                let ones = &mut ones;
                walk_block::<N, R>(
                    nodes,
                    root,
                    matrix,
                    base,
                    &active[..undecided],
                    |lane, class| {
                        ones[lane] += u32::from(class == 1);
                    },
                );
            }
            // Per-lane mathematically-decided early exit — the scalar
            // rule, applied by compacting decided lanes out of the
            // active set: a lane at the majority threshold stays there,
            // and a lane that cannot reach it even by winning every
            // remaining tree never will. Each lane therefore walks
            // exactly the trees the scalar path walks, and its counter
            // freezes at the scalar value.
            let remaining = (n - walked - 1) as u32;
            let mut keep = 0usize;
            for slot in 0..undecided {
                let lane = active[slot];
                let o = ones[lane as usize];
                if o < needed && o + remaining >= needed {
                    active[keep] = lane;
                    keep += 1;
                }
            }
            undecided = keep;
            if undecided == 0 {
                break;
            }
        }
        out.extend(ones.iter().take(live).map(|&o| o >= needed));
        base += live;
    }
}

/// Blocked majority vote: appends one class per matrix row to `out`,
/// bit-identical to the scalar `predict_in` per row (argmax with ties
/// to the lowest class; no early exit, matching the scalar path).
pub(crate) fn predict_rows_in<N: ArenaNode, const R: usize>(
    nodes: &[N],
    roots: &[u32],
    n_classes: usize,
    matrix: &BatchMatrix,
    out: &mut Vec<usize>,
) {
    let rows = matrix.rows();
    // `n_classes` is not a compile-time constant, so the per-row vote
    // counters live in one reusable table instead of on the stack.
    let mut votes = vec![0u32; n_classes.max(1) * R];
    let mut base = 0usize;
    let mut active = [0u32; R];
    for (lane, slot) in active.iter_mut().enumerate() {
        *slot = lane as u32;
    }
    while base < rows {
        let live = R.min(rows - base);
        votes.iter_mut().for_each(|v| *v = 0);
        for &root in roots {
            let votes = &mut votes;
            walk_block::<N, R>(nodes, root, matrix, base, &active[..live], |lane, class| {
                votes[lane * n_classes + class as usize] += 1;
            });
        }
        for lane in 0..live {
            out.push(argmax_u32(&votes[lane * n_classes..(lane + 1) * n_classes]));
        }
        base += live;
    }
}

/// `argmax` with ties to the lowest index — the same contract as the
/// scalar vote counter, over the kernels' packed `u32` counters.
fn argmax_u32(votes: &[u32]) -> usize {
    let mut best = 0usize;
    for (class, &count) in votes.iter().enumerate().skip(1) {
        if count > votes[best] {
            best = class;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_transposes_feature_major() {
        let rows: [&[f64]; 3] = [&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]];
        let matrix = BatchMatrix::from_rows(rows);
        assert_eq!(matrix.rows(), 3);
        assert_eq!(matrix.features(), 2);
        for (r, row) in rows.iter().enumerate() {
            for (f, &cell) in row.iter().enumerate() {
                assert_eq!(matrix.value(f, r), cell);
            }
        }
    }

    #[test]
    fn matrix_refill_reuses_capacity() {
        let mut matrix = BatchMatrix::new();
        let wide: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64; 8]).collect();
        matrix.fill(wide.iter().map(Vec::as_slice));
        assert_eq!(matrix.rows(), 16);
        let narrow: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64; 8]).collect();
        matrix.fill(narrow.iter().map(Vec::as_slice));
        assert_eq!(matrix.rows(), 4);
        assert_eq!(matrix.value(0, 3), 3.0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let matrix = BatchMatrix::from_rows(std::iter::empty());
        assert!(matrix.is_empty());
        assert_eq!(matrix.features(), 0);
    }

    #[test]
    #[should_panic(expected = "share one width")]
    fn ragged_rows_panic() {
        let rows: [&[f64]; 2] = [&[1.0, 2.0], &[3.0]];
        let _ = BatchMatrix::from_rows(rows);
    }

    #[test]
    fn argmax_ties_to_lowest() {
        assert_eq!(argmax_u32(&[3, 3, 1]), 0);
        assert_eq!(argmax_u32(&[1, 5, 5]), 1);
        assert_eq!(argmax_u32(&[0]), 0);
    }
}
