//! Property tests for the stage-1 verdict cache: for *arbitrary*
//! fingerprint sets — including exact duplicates and near-collisions
//! differing in a single feature — a cache-enabled identifier must
//! produce exactly the candidate sets of the uncached kernel path,
//! while actually serving repeats from the cache.

use std::sync::OnceLock;

use proptest::prelude::*;

use sentinel_core::{BankConfig, FingerprintDataset, Identifier, IdentifierConfig};
use sentinel_devicesim::catalog;
use sentinel_fingerprint::{FeatureVector, Fingerprint, FixedFingerprint};
use sentinel_ml::ForestConfig;
use sentinel_netproto::{MacAddr, Packet};

fn train() -> Identifier {
    let devices: Vec<_> = catalog().into_iter().take(3).collect();
    let dataset = FingerprintDataset::collect(&devices, 8, 5);
    let config = IdentifierConfig {
        bank: BankConfig {
            forest: ForestConfig::default().with_trees(15),
            ..BankConfig::default()
        },
        ..IdentifierConfig::default()
    };
    Identifier::train(&dataset, &config)
}

/// One trained model per process; training is deterministic, so the
/// cached twin (same dataset, same config) is the identical model with
/// the verdict cache switched on.
fn models() -> &'static (Identifier, Identifier) {
    static MODELS: OnceLock<(Identifier, Identifier)> = OnceLock::new();
    MODELS.get_or_init(|| {
        let plain = train();
        let mut cached = train();
        cached.enable_verdict_cache(true);
        (plain, cached)
    })
}

/// An arbitrary fingerprint: a handful of feature vectors drawn from a
/// small packet pool, distinguished by their destination counters.
fn fingerprint(spec: &[(u8, u32)]) -> Fingerprint {
    spec.iter()
        .map(|&(kind, counter)| {
            let packet = match kind % 3 {
                0 => Packet::dhcp_discover(MacAddr::new([2, 0, 0, 0, 0, kind]), 7, 0),
                1 => Packet::arp_probe(
                    sentinel_netproto::Timestamp::ZERO,
                    MacAddr::new([2, 0, 0, 0, 0, kind]),
                    std::net::Ipv4Addr::new(192, 168, 0, 40),
                ),
                _ => Packet::eapol_key(
                    sentinel_netproto::Timestamp::ZERO,
                    MacAddr::new([2, 0, 0, 0, 0, kind]),
                    MacAddr::ZERO,
                    2,
                ),
            };
            FeatureVector::from_packet(&packet, counter)
        })
        .collect()
}

fn specs() -> impl Strategy<Value = Vec<Vec<(u8, u32)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..3, 1u32..20), 1..6),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cached stage 1 == fresh stage 1, for arbitrary sets *plus* an
    /// exact duplicate and a one-feature near-collision of every set
    /// member (the bit-pattern key must separate near-collisions and
    /// unify duplicates), across two passes so the second is served
    /// entirely from the cache.
    #[test]
    fn cached_verdicts_equal_fresh_classify(specs in specs()) {
        let (plain, cached) = models();

        let mut fingerprints: Vec<Fingerprint> = specs.iter().map(|s| fingerprint(s)).collect();
        // Exact duplicates: must unify on one cache entry.
        for spec in &specs {
            fingerprints.push(fingerprint(spec));
        }
        // Near-collisions: one feature nudged, so `F'` differs in a
        // single dimension — a distinct key that must NOT unify.
        for spec in &specs {
            let mut near = spec.clone();
            near[0].1 += 23;
            fingerprints.push(fingerprint(&near));
        }
        let fixed: Vec<FixedFingerprint> = fingerprints
            .iter()
            .map(FixedFingerprint::from_fingerprint)
            .collect();
        let refs: Vec<&FixedFingerprint> = fixed.iter().collect();

        let fresh = plain.classify_batch(&refs);
        let (hits_before, _) = cached.verdict_cache_stats();
        let first = cached.classify_batch(&refs);
        prop_assert_eq!(&first, &fresh, "cached pass 1 diverged from fresh classify");

        // Pass 2 over the same rows: every row must be a cache hit and
        // the verdicts must not drift.
        let (hits_mid, lookups_mid) = cached.verdict_cache_stats();
        let second = cached.classify_batch(&refs);
        let (hits_after, lookups_after) = cached.verdict_cache_stats();
        prop_assert_eq!(&second, &fresh, "cache replay drifted");
        prop_assert_eq!(lookups_after - lookups_mid, refs.len() as u64);
        prop_assert_eq!(
            hits_after - hits_mid,
            refs.len() as u64,
            "pass 2 must be served entirely from the cache"
        );
        prop_assert!(hits_after > hits_before);
    }
}
