//! Enforcement data-plane micro-benchmarks: rule-cache lookup stays O(1)
//! as the cache grows (the property behind the paper's hash-table design,
//! Sect. V), and flow-table hits avoid the packet-in round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_netproto::{AppPayload, MacAddr, Packet, Timestamp};
use sentinel_sdn::{EnforcementModule, EnforcementRule, OvsSwitch, RuleCache};
use std::net::Ipv4Addr;

fn mac(i: u32) -> MacAddr {
    MacAddr::new([2, 0, (i >> 16) as u8, (i >> 8) as u8, i as u8, 1])
}

fn cache_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_cache_lookup");
    for rules in [16u32, 1024, 65_536] {
        let mut cache = RuleCache::new();
        for i in 0..rules {
            cache.insert(EnforcementRule::strict(mac(i)));
        }
        let probe = mac(rules / 2);
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            b.iter(|| cache.lookup(std::hint::black_box(probe)).is_some())
        });
    }
    group.finish();
}

fn switch_paths(c: &mut Criterion) {
    let mut controller = EnforcementModule::new();
    controller.install_rule(EnforcementRule::trusted(mac(1)));
    let packet = Packet::udp_ipv4(
        Timestamp::ZERO,
        mac(1),
        mac(0),
        Ipv4Addr::new(192, 168, 0, 40),
        Ipv4Addr::new(52, 29, 100, 7),
        50000,
        443,
        AppPayload::Empty,
    );

    // Flow-table hit path (steady state).
    let mut hit_switch = OvsSwitch::lab();
    hit_switch.process(&packet, &mut controller); // install the flow
    c.bench_function("switch_flow_hit", |b| {
        b.iter(|| hit_switch.process(std::hint::black_box(&packet), &mut controller))
    });

    // Packet-in path (first packet of each flow).
    c.bench_function("switch_packet_in", |b| {
        b.iter_batched(
            OvsSwitch::lab,
            |mut switch| switch.process(&packet, &mut controller),
            criterion::BatchSize::SmallInput,
        )
    });

    // No-filtering baseline.
    let mut plain = OvsSwitch::lab();
    plain.set_filtering(false);
    c.bench_function("switch_no_filtering", |b| {
        b.iter(|| plain.process(std::hint::black_box(&packet), &mut controller))
    });
}

fn wire_codec(c: &mut Criterion) {
    let packet = Packet::dhcp_discover(mac(9), 42, 0);
    let bytes = packet.encode();
    c.bench_function("packet_encode", |b| {
        b.iter(|| std::hint::black_box(&packet).encode())
    });
    c.bench_function("packet_parse", |b| {
        b.iter(|| Packet::parse(std::hint::black_box(&bytes), Timestamp::ZERO).expect("parse"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = cache_lookup, switch_paths, wire_codec
}
criterion_main!(benches);
