//! Legacy installation support (Sect. VIII-A).
//!
//! When IoT Sentinel is installed as a firmware update on a network that
//! already has devices, there is no setup phase to observe: devices are
//! fingerprinted from their standby/operation traffic, all of them start
//! in the untrusted overlay (the legacy WPA2-Personal PSK may already be
//! leaked), and only devices that identify as vulnerability-free *and*
//! support WPS re-keying are moved to the trusted overlay with a fresh
//! device-specific PSK. Devices that cannot re-key either remain in the
//! untrusted overlay (PSK retained) or must be re-introduced manually
//! (PSK deprecated).

use serde::{Deserialize, Serialize};

use sentinel_fingerprint::{extract, FixedFingerprint};
use sentinel_netproto::{MacAddr, Packet};
use sentinel_sdn::{EnforcementModule, EnforcementRule, IsolationLevel};

use crate::report::{Identification, ServiceResponse};
use crate::SecurityService;

/// Whether a legacy device supports WiFi Protected Setup re-keying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RekeySupport {
    /// The device implements WPS re-keying: it can obtain a fresh
    /// device-specific PSK for the trusted overlay.
    Wps,
    /// No re-keying support (common for old firmware).
    None,
}

/// What to do with the legacy network's shared PSK (Sect. VIII-A lists
/// both options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PskPolicy {
    /// Keep the legacy PSK in force: non-rekeyable devices continue to
    /// operate in the untrusted overlay (better user experience, more
    /// exposure).
    Retain,
    /// Deprecate the legacy PSK: non-rekeyable devices drop off the
    /// network and must be re-introduced manually.
    Deprecate,
}

/// Why a migrated device stayed in the untrusted overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UntrustedReason {
    /// The identified type has known vulnerabilities.
    KnownVulnerabilities,
    /// No classifier accepted the fingerprint.
    UnknownType,
    /// Clean type, but the device cannot perform WPS re-keying and the
    /// legacy PSK was retained.
    NoRekeySupport,
}

/// The migration outcome for one legacy device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationOutcome {
    /// Re-keyed via WPS and moved to the trusted overlay.
    MovedToTrusted,
    /// Stays in the untrusted overlay.
    RemainsUntrusted(UntrustedReason),
    /// Dropped off the network (PSK deprecated, no WPS); the user must
    /// re-introduce it through the normal onboarding flow.
    RequiresManualReintroduction,
}

/// A device present in the legacy installation: its MAC, a capture of
/// its standby/operation traffic, and its re-keying capability.
#[derive(Debug, Clone, PartialEq)]
pub struct LegacyDevice {
    /// The device's MAC address.
    pub mac: MacAddr,
    /// Standby/operation packets captured from the device.
    pub packets: Vec<Packet>,
    /// WPS re-keying capability.
    pub rekey: RekeySupport,
}

/// The record of one device's migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The migrated device.
    pub mac: MacAddr,
    /// The identification from its standby traffic.
    pub identification: Identification,
    /// Where the device ended up.
    pub outcome: MigrationOutcome,
    /// The isolation level of the installed rule, if a rule remains.
    pub isolation: Option<IsolationLevel>,
}

/// Migrates a legacy installation: identifies every device from standby
/// traffic, installs the appropriate enforcement rules into `module`,
/// and reports per-device outcomes.
///
/// Clean-but-unrekeyable devices under [`PskPolicy::Retain`] are given a
/// *restricted* rule whose endpoint whitelist is the set of remote
/// endpoints observed in their own standby traffic — they keep operating
/// (untrusted overlay + their usual cloud endpoints) without gaining new
/// reach, a conservative rendering of the paper's "continues to operate
/// in the untrusted network".
pub fn migrate<S: SecurityService>(
    service: &S,
    policy: PskPolicy,
    devices: &[LegacyDevice],
    module: &mut EnforcementModule,
) -> Vec<MigrationRecord> {
    devices
        .iter()
        .map(|device| migrate_one(service, policy, device, module))
        .collect()
}

fn migrate_one<S: SecurityService>(
    service: &S,
    policy: PskPolicy,
    device: &LegacyDevice,
    module: &mut EnforcementModule,
) -> MigrationRecord {
    let full = extract(&device.packets);
    let fixed = FixedFingerprint::from_fingerprint(&full);
    let response: ServiceResponse = service.assess(&full, &fixed);
    let (outcome, rule) = match response.isolation {
        IsolationLevel::Trusted => match (device.rekey, policy) {
            (RekeySupport::Wps, _) => (
                MigrationOutcome::MovedToTrusted,
                Some(EnforcementRule::trusted(device.mac)),
            ),
            (RekeySupport::None, PskPolicy::Retain) => {
                let observed: Vec<std::net::IpAddr> = observed_remote_endpoints(&device.packets);
                (
                    MigrationOutcome::RemainsUntrusted(UntrustedReason::NoRekeySupport),
                    Some(EnforcementRule::restricted(device.mac, observed)),
                )
            }
            (RekeySupport::None, PskPolicy::Deprecate) => {
                (MigrationOutcome::RequiresManualReintroduction, None)
            }
        },
        IsolationLevel::Restricted => (
            MigrationOutcome::RemainsUntrusted(UntrustedReason::KnownVulnerabilities),
            Some(EnforcementRule::restricted(
                device.mac,
                response.permitted_endpoints.iter().copied(),
            )),
        ),
        IsolationLevel::Strict => (
            MigrationOutcome::RemainsUntrusted(UntrustedReason::UnknownType),
            Some(EnforcementRule::strict(device.mac)),
        ),
    };
    let isolation = rule.as_ref().map(|r| r.level);
    match rule {
        Some(rule) => module.install_rule(rule),
        None => {
            module.remove_rule(device.mac);
        }
    }
    MigrationRecord {
        mac: device.mac,
        identification: response.identification,
        outcome,
        isolation,
    }
}

/// The distinct public (non-RFC1918, non-multicast) IPv4 destinations in
/// a capture, in first-contact order.
fn observed_remote_endpoints(packets: &[Packet]) -> Vec<std::net::IpAddr> {
    let mut seen = Vec::new();
    for packet in packets {
        if let Some(std::net::IpAddr::V4(ip)) = packet.dst_ip() {
            let private = ip.is_private()
                || ip.is_broadcast()
                || ip.is_multicast()
                || ip.is_link_local()
                || ip.is_unspecified();
            let addr = std::net::IpAddr::V4(ip);
            if !private && !seen.contains(&addr) {
                seen.push(addr);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Outcome, ServiceResponse};
    use sentinel_devicesim::{catalog, Testbed};
    use sentinel_fingerprint::Fingerprint;
    use sentinel_sdn::overlay::Overlay;

    /// Scripted service: identifies everything as the given fixture.
    struct Scripted {
        isolation: IsolationLevel,
    }

    impl SecurityService for Scripted {
        fn assess(&self, _f: &Fingerprint, _x: &FixedFingerprint) -> ServiceResponse {
            ServiceResponse {
                identification: Identification {
                    outcome: Outcome::Identified {
                        label: 0,
                        name: "Fixture".into(),
                    },
                    candidates: vec![0],
                    discriminated: false,
                    scores: vec![],
                },
                isolation: self.isolation,
                permitted_endpoints: vec![],
                user_notification: None,
            }
        }
    }

    fn legacy_device(rekey: RekeySupport) -> LegacyDevice {
        let devices = catalog();
        let trace = Testbed::new(9).standby_run(&devices[0].profile, 0, 2);
        LegacyDevice {
            mac: trace.mac,
            packets: trace.packets,
            rekey,
        }
    }

    #[test]
    fn clean_wps_device_moves_to_trusted() {
        let mut module = EnforcementModule::new();
        let device = legacy_device(RekeySupport::Wps);
        let records = migrate(
            &Scripted {
                isolation: IsolationLevel::Trusted,
            },
            PskPolicy::Retain,
            std::slice::from_ref(&device),
            &mut module,
        );
        assert_eq!(records[0].outcome, MigrationOutcome::MovedToTrusted);
        assert_eq!(module.overlay_of(device.mac), Overlay::Trusted);
    }

    #[test]
    fn clean_non_wps_device_stays_untrusted_with_observed_endpoints() {
        let mut module = EnforcementModule::new();
        let device = legacy_device(RekeySupport::None);
        let records = migrate(
            &Scripted {
                isolation: IsolationLevel::Trusted,
            },
            PskPolicy::Retain,
            std::slice::from_ref(&device),
            &mut module,
        );
        assert_eq!(
            records[0].outcome,
            MigrationOutcome::RemainsUntrusted(UntrustedReason::NoRekeySupport)
        );
        assert_eq!(module.overlay_of(device.mac), Overlay::Untrusted);
        // Its own cloud endpoints stay reachable.
        let rule = module.cache().get(device.mac).expect("rule installed");
        assert!(
            !rule.permitted_endpoints.is_empty(),
            "standby traffic contains cloud endpoints"
        );
        for endpoint in &rule.permitted_endpoints {
            assert!(rule.permits_remote(*endpoint));
        }
    }

    #[test]
    fn deprecated_psk_drops_non_wps_devices() {
        let mut module = EnforcementModule::new();
        let device = legacy_device(RekeySupport::None);
        let records = migrate(
            &Scripted {
                isolation: IsolationLevel::Trusted,
            },
            PskPolicy::Deprecate,
            std::slice::from_ref(&device),
            &mut module,
        );
        assert_eq!(
            records[0].outcome,
            MigrationOutcome::RequiresManualReintroduction
        );
        assert!(records[0].isolation.is_none());
        assert!(module.cache().get(device.mac).is_none());
    }

    #[test]
    fn vulnerable_device_remains_untrusted_even_with_wps() {
        let mut module = EnforcementModule::new();
        let device = legacy_device(RekeySupport::Wps);
        let records = migrate(
            &Scripted {
                isolation: IsolationLevel::Restricted,
            },
            PskPolicy::Retain,
            std::slice::from_ref(&device),
            &mut module,
        );
        assert_eq!(
            records[0].outcome,
            MigrationOutcome::RemainsUntrusted(UntrustedReason::KnownVulnerabilities)
        );
        assert_eq!(module.overlay_of(device.mac), Overlay::Untrusted);
    }

    #[test]
    fn unknown_device_gets_strict() {
        let mut module = EnforcementModule::new();
        let device = legacy_device(RekeySupport::Wps);
        let records = migrate(
            &Scripted {
                isolation: IsolationLevel::Strict,
            },
            PskPolicy::Retain,
            &[device],
            &mut module,
        );
        assert_eq!(
            records[0].outcome,
            MigrationOutcome::RemainsUntrusted(UntrustedReason::UnknownType)
        );
        assert_eq!(records[0].isolation, Some(IsolationLevel::Strict));
    }

    #[test]
    fn observed_endpoints_are_public_and_deduplicated() {
        let devices = catalog();
        let trace = Testbed::new(10).standby_run(&devices[0].profile, 0, 3);
        let endpoints = observed_remote_endpoints(&trace.packets);
        let distinct: std::collections::HashSet<_> = endpoints.iter().collect();
        assert_eq!(distinct.len(), endpoints.len());
        for endpoint in &endpoints {
            let std::net::IpAddr::V4(v4) = endpoint else {
                panic!("v4 only in this lab")
            };
            assert!(!v4.is_private());
        }
    }
}
