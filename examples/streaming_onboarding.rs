//! Streaming onboarding: eight devices join the network *at the same
//! time*, their setup traffic arriving as one interleaved packet stream.
//! The bounded streaming runtime demultiplexes it per device, detects
//! each setup phase's end on the fly, and drives every device through
//! assess → enforce — with decisions bit-identical to the batch gateway.
//!
//! ```text
//! cargo run --release --example streaming_onboarding
//! ```

use std::net::Ipv4Addr;
use std::time::Duration;

use iot_sentinel::devicesim::{catalog, interleave, Testbed};
use iot_sentinel::netproto::stream::MemorySource;
use iot_sentinel::netproto::{AppPayload, MacAddr, Packet, Timestamp};
use iot_sentinel::prelude::*;
use iot_sentinel::sdn::FlowAction;
use iot_sentinel::stream::{StreamConfig, StreamRuntime};

fn main() {
    // Train the IoTSSP on the 27-type catalog (as in `quickstart`).
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 20, 42);
    let service = IoTSecurityService::train(&dataset, &ServiceConfig::default());

    // Eight different devices are unboxed within two seconds of each
    // other; `interleave` merges their setup traces into the single
    // packet sequence the gateway's mirror port would actually see.
    let testbed = Testbed::new(7);
    let traces: Vec<_> = (0..8)
        .map(|i| testbed.setup_run(&devices[i * 3].profile, 1))
        .collect();
    let stream = interleave(&traces, Duration::from_millis(250));
    println!(
        "streaming {} interleaved packets from {} concurrent setups\n",
        stream.len(),
        traces.len()
    );

    // The runtime holds at most `max_sessions` concurrent sessions (LRU
    // shedding beyond that, spread over 64 virtual shards) and keeps only
    // feature state per device — never raw packets. `threads: 0` = auto;
    // every thread count makes identical decisions.
    let mut runtime = StreamRuntime::with_config(
        service,
        StreamConfig {
            max_sessions: 256,
            ..StreamConfig::default()
        },
    );
    let reports = runtime
        .run(MemorySource::new(stream))
        .expect("in-memory stream");
    for report in &reports {
        println!("{report}");
    }
    println!("\n{}\n", runtime.stats());

    // Enforcement is live the moment a device onboards: a restricted
    // camera reaches only its vendor cloud, everything else is dropped.
    if let Some(restricted) = reports
        .iter()
        .find(|r| !r.response.permitted_endpoints.is_empty())
    {
        let mac = restricted.mac;
        let internet = runtime.enforce(&outbound(mac, Ipv4Addr::new(93, 184, 216, 34), 443));
        println!(
            "restricted {mac} -> internet: {}",
            match internet.action {
                FlowAction::Forward => "forwarded",
                FlowAction::Drop => "BLOCKED",
            }
        );
        if let std::net::IpAddr::V4(cloud) = restricted.response.permitted_endpoints[0] {
            let vendor = runtime.enforce(&outbound(mac, cloud, 443));
            println!(
                "restricted {mac} -> vendor cloud {cloud}: {}",
                match vendor.action {
                    FlowAction::Forward => "forwarded (whitelisted)",
                    FlowAction::Drop => "BLOCKED",
                }
            );
        }
    }
}

fn outbound(mac: MacAddr, dst: Ipv4Addr, port: u16) -> Packet {
    Packet::udp_ipv4(
        Timestamp::from_secs(600),
        mac,
        MacAddr::new([0x02, 0x53, 0x47, 0x57, 0x00, 0x01]),
        Ipv4Addr::new(192, 168, 0, 99),
        dst,
        50000,
        port,
        AppPayload::Empty,
    )
}
