//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this crate implements
//! exactly the API surface the workspace uses: [`rngs::StdRng`] (a
//! xoshiro256++ generator seeded through SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits with `gen`, `gen_range` and
//! `gen_bool`, the [`seq::SliceRandom`] shuffle/choose helpers, and the
//! `Standard` distribution. Sequences are deterministic given a seed on
//! every platform, which is all the reproduction needs — no claims are
//! made about statistical quality beyond "good enough for sampling".

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Distributions over value types.
pub mod distributions {
    use super::RngCore;

    /// A distribution that produces values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the whole type (floats in
    /// `[0, 1)`).
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl<T, const N: usize> Distribution<[T; N]> for Standard
    where
        Standard: Distribution<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
            core::array::from_fn(|_| self.sample(rng))
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++ seeded
    /// through SplitMix64. (The real `rand::rngs::StdRng` is ChaCha12;
    /// only determinism-per-seed matters here, not the exact stream.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: core::array::from_fn(|_| splitmix64(&mut s)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_single(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(15..180u64);
            assert!((15..180).contains(&v));
            let w: usize = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<usize> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}
