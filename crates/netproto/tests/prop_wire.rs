//! Property tests: wire-format encode/parse roundtrips for every layer,
//! with randomly generated packets.

use proptest::prelude::*;

use sentinel_netproto::arp::ArpPacket;
use sentinel_netproto::dhcp::{DhcpMessage, DhcpOption};
use sentinel_netproto::dns::{DnsMessage, Question, RecordData, RecordType, ResourceRecord};
use sentinel_netproto::eapol::{EapolPacket, EapolType};
use sentinel_netproto::http::HttpMessage;
use sentinel_netproto::icmp::IcmpMessage;
use sentinel_netproto::ipv4::{IpProtocol, Ipv4Header, Ipv4Option};
use sentinel_netproto::ntp::NtpPacket;
use sentinel_netproto::pcap::{PcapReader, PcapWriter};
use sentinel_netproto::tcp::{TcpFlags, TcpHeader};
use sentinel_netproto::tls::{ContentType, TlsRecord};
use sentinel_netproto::{AppPayload, MacAddr, Packet, PacketBody, Timestamp};

fn mac_strategy() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn ipv4_strategy() -> impl Strategy<Value = std::net::Ipv4Addr> {
    any::<[u8; 4]>().prop_map(std::net::Ipv4Addr::from)
}

fn dns_name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,12}", 1..4).prop_map(|labels| labels.join("."))
}

/// Payloads paired with ports the parser dispatches on: a DHCP message on
/// a random high port would (correctly) come back as opaque bytes, so the
/// roundtrip property only holds for protocol-appropriate ports.
fn app_payload_strategy() -> impl Strategy<Value = (AppPayload, u16, u16)> {
    prop_oneof![
        (mac_strategy(), any::<u32>()).prop_map(|(mac, xid)| (
            AppPayload::Dhcp(DhcpMessage::discover(mac, xid)),
            68,
            67
        )),
        (any::<u16>(), dns_name_strategy(), 49160u16..65000).prop_map(|(id, name, sport)| (
            AppPayload::Dns(DnsMessage::query(id, [Question::a(name)])),
            sport,
            53
        )),
        (dns_name_strategy(), "[a-z/]{1,16}", 49160u16..65000).prop_map(|(host, path, sport)| (
            AppPayload::Http(HttpMessage::get(host, format!("/{path}"))),
            sport,
            80
        )),
        (1usize..400, 49160u16..65000).prop_map(|(len, sport)| (
            AppPayload::Tls(TlsRecord::client_hello(len)),
            sport,
            443
        )),
        any::<u64>().prop_map(|ts| (AppPayload::Ntp(NtpPacket::client_request(ts)), 123, 123)),
        // Raw payloads must not be mistakable for a TLS record: keep the
        // first byte outside the TLS content-type range and use neutral
        // ports.
        (
            proptest::collection::vec(any::<u8>(), 1..200),
            20000u16..40000
        )
            .prop_map(|(mut data, port)| {
                data[0] |= 0x80;
                (AppPayload::Raw(data.into()), port, port + 1)
            }),
        (20000u16..40000).prop_map(|port| (AppPayload::Empty, port, port + 1)),
    ]
}

fn packet_strategy() -> impl Strategy<Value = Packet> {
    let arp = (
        mac_strategy(),
        mac_strategy(),
        ipv4_strategy(),
        ipv4_strategy(),
        any::<u64>(),
    )
        .prop_map(|(src, dst, sip, tip, ts)| {
            Packet::new(
                Timestamp::from_micros(ts % 1_000_000_000),
                src,
                dst,
                PacketBody::Arp(ArpPacket::request(src, sip, tip)),
            )
        });
    let eapol =
        (mac_strategy(), mac_strategy(), 1u8..=4, any::<u64>()).prop_map(|(src, dst, n, ts)| {
            Packet::new(
                Timestamp::from_micros(ts % 1_000_000_000),
                src,
                dst,
                PacketBody::Eapol(EapolPacket::key_handshake(n)),
            )
        });
    let udp = (
        mac_strategy(),
        mac_strategy(),
        ipv4_strategy(),
        ipv4_strategy(),
        app_payload_strategy(),
    )
        .prop_map(|(src, dst, sip, dip, (payload, sport, dport))| {
            Packet::udp_ipv4(Timestamp::ZERO, src, dst, sip, dip, sport, dport, payload)
        });
    let tcp = (
        mac_strategy(),
        mac_strategy(),
        ipv4_strategy(),
        ipv4_strategy(),
        20000u16..40000,
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(src, dst, sip, dip, port, data)| {
            Packet::tcp_ipv4(
                Timestamp::ZERO,
                src,
                dst,
                sip,
                dip,
                TcpHeader::new(port, port + 1, TcpFlags::PSH | TcpFlags::ACK),
                if data.is_empty() {
                    AppPayload::Empty
                } else {
                    AppPayload::Raw(data.into())
                },
            )
        });
    prop_oneof![arp, eapol, udp, tcp]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packet_wire_roundtrip(packet in packet_strategy()) {
        let bytes = packet.encode();
        let parsed = Packet::parse(&bytes, packet.timestamp).expect("well-formed packet");
        prop_assert_eq!(parsed, packet);
    }

    #[test]
    fn packet_parse_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Packet::parse(&bytes, Timestamp::ZERO);
    }

    #[test]
    fn pcap_roundtrip(packets in proptest::collection::vec(packet_strategy(), 0..8)) {
        let mut capture = Vec::new();
        let mut writer = PcapWriter::new(&mut capture).expect("header");
        for packet in &packets {
            writer.write_packet(packet).expect("record");
        }
        writer.finish().expect("flush");
        let mut reader = PcapReader::new(capture.as_slice()).expect("header");
        let replayed = reader.read_all().expect("records");
        prop_assert_eq!(replayed, packets);
    }

    #[test]
    fn ipv4_options_roundtrip(
        router_alert in any::<bool>(),
        nops in 0usize..3,
        src in ipv4_strategy(),
        dst in ipv4_strategy(),
        payload_len in 0usize..64,
    ) {
        let mut header = Ipv4Header::new(src, dst, IpProtocol::Udp);
        if router_alert {
            header = header.with_option(Ipv4Option::RouterAlert(0));
        }
        for _ in 0..nops {
            header = header.with_option(Ipv4Option::Nop);
        }
        let mut buf = Vec::new();
        header.encode(&mut buf, payload_len);
        buf.extend(std::iter::repeat_n(0xab, payload_len));
        let (parsed, rest) = Ipv4Header::parse(&buf).expect("header");
        prop_assert_eq!(rest.len(), payload_len);
        prop_assert_eq!(parsed.has_router_alert(), router_alert);
        prop_assert_eq!(parsed.has_padding_option(), nops > 0);
    }

    #[test]
    fn dhcp_message_roundtrip(
        mac in mac_strategy(),
        xid in any::<u32>(),
        hostname in "[a-zA-Z0-9!.-]{0,24}",
    ) {
        let mut msg = DhcpMessage::discover(mac, xid);
        if !hostname.is_empty() {
            msg.options.push(DhcpOption::HostName(hostname));
        }
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        prop_assert_eq!(DhcpMessage::parse(&buf).expect("dhcp"), msg);
    }

    #[test]
    fn dns_message_roundtrip(
        id in any::<u16>(),
        names in proptest::collection::vec(dns_name_strategy(), 1..4),
        ttl in any::<u32>(),
    ) {
        let mut msg = DnsMessage::query(id, names.iter().map(|n| Question::a(n.clone())));
        msg.answers.push(ResourceRecord {
            name: names[0].clone(),
            ttl,
            cache_flush: false,
            data: RecordData::A(std::net::Ipv4Addr::new(10, 0, 0, 1)),
        });
        prop_assert_eq!(DnsMessage::parse(&msg.to_bytes()).expect("dns"), msg);
    }

    #[test]
    fn dns_qtype_preserved(name in dns_name_strategy(), qtype_raw in 1u16..60) {
        let question = Question {
            name,
            qtype: RecordType::from_u16(qtype_raw),
            unicast_response: false,
        };
        let msg = DnsMessage::query(1, [question.clone()]);
        let parsed = DnsMessage::parse(&msg.to_bytes()).expect("dns");
        prop_assert_eq!(&parsed.questions[0], &question);
    }

    #[test]
    fn eapol_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..128), kind in 0u8..5) {
        let packet = EapolPacket::new(EapolType::from_u8(kind), body);
        let mut buf = Vec::new();
        packet.encode(&mut buf);
        prop_assert_eq!(EapolPacket::parse(&buf).expect("eapol"), packet);
    }

    #[test]
    fn icmp_roundtrip(id in any::<u16>(), seq in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let msg = IcmpMessage::echo_request(id, seq, payload);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        prop_assert_eq!(IcmpMessage::parse(&buf).expect("icmp"), msg);
    }

    #[test]
    fn tls_roundtrip(kind in 20u8..24, len in 0usize..512) {
        let record = TlsRecord::new(ContentType::from_u8(kind), vec![0x5a; len]);
        let mut buf = Vec::new();
        record.encode(&mut buf);
        prop_assert_eq!(TlsRecord::parse(&buf).expect("tls"), record);
    }

    #[test]
    fn protocol_set_roundtrips_bits(bits in any::<u16>()) {
        let set = sentinel_netproto::ProtocolSet::from_bits(bits);
        prop_assert_eq!(set.bits(), bits);
        let rebuilt: sentinel_netproto::ProtocolSet = set.iter().collect();
        prop_assert_eq!(rebuilt, set);
    }
}
