//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (which are value-tree based, not visitor based). The input is
//! parsed directly from the token stream — no `syn`/`quote` available
//! offline — which is feasible because the workspace only derives on
//! non-generic structs and enums without `#[serde(...)]` attributes.
//!
//! Encoding matches serde's externally-tagged JSON defaults:
//! named struct → object, newtype struct → inner value, tuple struct →
//! array, unit enum variant → string, data-carrying variant →
//! single-entry object keyed by variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*pos), tokens.get(*pos + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *pos += 2;
        } else {
            break;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Splits a token stream on commas that sit outside any `<...>` nesting.
/// (Delimiters like parens/braces are single `Group` tokens, so only angle
/// brackets need explicit depth tracking.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    pieces.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token);
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    pieces
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|piece| {
            let mut pos = 0;
            skip_attributes(&piece, &mut pos);
            skip_visibility(&piece, &mut pos);
            Field {
                name: expect_ident(&piece, &mut pos),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|piece| {
            let mut pos = 0;
            skip_attributes(&piece, &mut pos);
            let name = expect_ident(&piece, &mut pos);
            let kind = match piece.get(pos) {
                None => VariantKind::Unit,
                // `= discriminant` — explicit values on unit variants.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                other => panic!("unsupported variant body for {name}: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}",
                items = items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_value(::serde::obj_get(value, \"{0}\")?)?",
                        f.name
                    )
                })
                .collect();
            format!("Ok({name} {{ {inits} }})", inits = inits.join(", "))
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::as_array(value, {arity})?;\n\
                 Ok({name}({inits}))",
                inits = inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!("Ok({name})"),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let items = ::serde::as_array(inner, {n})?; Ok({name}::{vname}({inits})) }}",
                                inits = inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{0}: ::serde::Deserialize::from_value(::serde::obj_get(inner, \"{0}\")?)?",
                                        f.name
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {inits} }}),",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::custom(\"invalid value for enum {name}\")),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
