//! The layered packet model and its wire codec.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::arp::ArpPacket;
use crate::dhcp::DhcpMessage;
use crate::dns::DnsMessage;
use crate::eapol::EapolPacket;
use crate::ethernet::{EtherType, EthernetHeader};
use crate::http::HttpMessage;
use crate::icmp::IcmpMessage;
use crate::icmpv6::Icmpv6Message;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::ipv6::Ipv6Header;
use crate::llc::LlcHeader;
use crate::ntp::NtpPacket;
use crate::tcp::TcpHeader;
use crate::tls::TlsRecord;
use crate::udp::UdpHeader;
use crate::{classify, ports, MacAddr, ParseError, ProtocolSet, Timestamp};

/// An application-layer payload carried by TCP or UDP.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppPayload {
    /// DHCP or plain BOOTP.
    Dhcp(DhcpMessage),
    /// DNS or mDNS (distinguished by port).
    Dns(DnsMessage),
    /// HTTP or SSDP (SSDP is HTTP framing over UDP 1900).
    Http(HttpMessage),
    /// A TLS record (HTTPS and other TLS-wrapped protocols).
    Tls(TlsRecord),
    /// NTP.
    Ntp(NtpPacket),
    /// Uninterpreted bytes (proprietary device protocols).
    Raw(Bytes),
    /// No payload (e.g. a bare TCP SYN).
    Empty,
}

impl AppPayload {
    /// Appends the payload bytes to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            AppPayload::Dhcp(m) => m.encode(buf),
            AppPayload::Dns(m) => m.encode(buf),
            AppPayload::Http(m) => m.encode(buf),
            AppPayload::Tls(r) => r.encode(buf),
            AppPayload::Ntp(p) => p.encode(buf),
            AppPayload::Raw(bytes) => buf.put_slice(bytes),
            AppPayload::Empty => {}
        }
    }

    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Parses a payload based on the transport port pair, falling back to
    /// [`AppPayload::Raw`] when the protocol suggested by the ports does
    /// not parse.
    pub fn parse(bytes: &[u8], src_port: u16, dst_port: u16) -> Self {
        Self::parse_with(bytes, src_port, dst_port, &Bytes::copy_from_slice)
    }

    /// The payload parser with an injectable `raw` constructor, so
    /// [`Packet::parse_bytes`] can slice the original frame buffer
    /// instead of copying into the `Raw` fallback.
    fn parse_with(
        bytes: &[u8],
        src_port: u16,
        dst_port: u16,
        raw: &dyn Fn(&[u8]) -> Bytes,
    ) -> Self {
        if bytes.is_empty() {
            return AppPayload::Empty;
        }
        let port_is = |p: u16| src_port == p || dst_port == p;
        let parsed = if port_is(ports::DHCP_SERVER) || port_is(ports::DHCP_CLIENT) {
            DhcpMessage::parse(bytes).map(AppPayload::Dhcp).ok()
        } else if port_is(ports::DNS) || port_is(ports::MDNS) {
            DnsMessage::parse(bytes).map(AppPayload::Dns).ok()
        } else if port_is(ports::SSDP) || port_is(ports::HTTP) || port_is(ports::HTTP_ALT) {
            HttpMessage::parse(bytes).map(AppPayload::Http).ok()
        } else if port_is(ports::HTTPS) {
            TlsRecord::parse(bytes).map(AppPayload::Tls).ok()
        } else if port_is(ports::NTP) {
            NtpPacket::parse(bytes).map(AppPayload::Ntp).ok()
        } else if looks_like_tls(bytes) {
            // Vendors run TLS on non-standard ports (the paper's traffic
            // contains e.g. port-4000 and port-8443 TLS); detect it
            // structurally so the HTTPS feature still fires.
            TlsRecord::parse(bytes).map(AppPayload::Tls).ok()
        } else {
            None
        };
        parsed.unwrap_or_else(|| AppPayload::Raw(raw(bytes)))
    }
}

/// Strict structural check for a single well-formed TLS record: valid
/// content type, a TLS version byte pair, and a length field matching the
/// remaining bytes exactly.
fn looks_like_tls(bytes: &[u8]) -> bool {
    if bytes.len() < crate::tls::HEADER_LEN {
        return false;
    }
    let declared = u16::from_be_bytes([bytes[3], bytes[4]]) as usize;
    (20..=23).contains(&bytes[0])
        && bytes[1] == 3
        && bytes[2] <= 4
        && crate::tls::HEADER_LEN + declared == bytes.len()
}

/// A transport-layer segment inside an IP datagram.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// TCP segment.
    Tcp {
        /// TCP header.
        header: TcpHeader,
        /// Application payload.
        payload: AppPayload,
    },
    /// UDP datagram.
    Udp {
        /// UDP header.
        header: UdpHeader,
        /// Application payload.
        payload: AppPayload,
    },
    /// ICMPv4 message.
    Icmp(IcmpMessage),
    /// ICMPv6 message.
    Icmpv6(Icmpv6Message),
    /// Any other transport protocol, kept as raw bytes.
    Other {
        /// IP protocol number.
        protocol: u8,
        /// Raw payload.
        payload: Bytes,
    },
}

impl Transport {
    /// The IP protocol number of this transport.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            Transport::Tcp { .. } => IpProtocol::Tcp,
            Transport::Udp { .. } => IpProtocol::Udp,
            Transport::Icmp(_) => IpProtocol::Icmp,
            Transport::Icmpv6(_) => IpProtocol::Icmpv6,
            Transport::Other { protocol, .. } => IpProtocol::from_u8(*protocol),
        }
    }

    /// The `(source, destination)` port pair, if this transport has ports.
    pub fn ports(&self) -> Option<(u16, u16)> {
        match self {
            Transport::Tcp { header, .. } => Some((header.src_port, header.dst_port)),
            Transport::Udp { header, .. } => Some((header.src_port, header.dst_port)),
            _ => None,
        }
    }

    /// The application payload, if this transport carries one.
    pub fn app_payload(&self) -> Option<&AppPayload> {
        match self {
            Transport::Tcp { payload, .. } | Transport::Udp { payload, .. } => Some(payload),
            _ => None,
        }
    }
}

/// The body of an Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketBody {
    /// ARP.
    Arp(ArpPacket),
    /// EAPoL (802.1X).
    Eapol(EapolPacket),
    /// LLC (802.2) frame with opaque payload.
    Llc {
        /// LLC header.
        header: LlcHeader,
        /// Raw LLC payload.
        payload: Bytes,
    },
    /// IPv4 datagram.
    Ipv4 {
        /// IPv4 header.
        header: Ipv4Header,
        /// Transport segment.
        transport: Transport,
    },
    /// IPv6 datagram.
    Ipv6 {
        /// IPv6 header.
        header: Ipv6Header,
        /// Transport segment.
        transport: Transport,
    },
    /// Any other EtherType, kept as raw bytes.
    Other {
        /// Raw EtherType value.
        ethertype: u16,
        /// Raw frame payload.
        payload: Bytes,
    },
}

/// A captured (or synthesized) network packet with full layering.
///
/// This is the unit the Security Gateway's monitoring module records for
/// each new device, and the input to fingerprint feature extraction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Capture timestamp.
    pub timestamp: Timestamp,
    /// Source MAC address.
    pub src: MacAddr,
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Frame body.
    pub body: PacketBody,
}

impl Packet {
    /// Creates a packet from its parts.
    pub fn new(timestamp: Timestamp, src: MacAddr, dst: MacAddr, body: PacketBody) -> Self {
        Packet {
            timestamp,
            src,
            dst,
            body,
        }
    }

    /// The source MAC address.
    pub fn src_mac(&self) -> MacAddr {
        self.src
    }

    /// The destination MAC address.
    pub fn dst_mac(&self) -> MacAddr {
        self.dst
    }

    /// The destination IP address, if the packet has an IP layer.
    pub fn dst_ip(&self) -> Option<IpAddr> {
        match &self.body {
            PacketBody::Ipv4 { header, .. } => Some(IpAddr::V4(header.dst)),
            PacketBody::Ipv6 { header, .. } => Some(IpAddr::V6(header.dst)),
            _ => None,
        }
    }

    /// The source IP address, if the packet has an IP layer.
    pub fn src_ip(&self) -> Option<IpAddr> {
        match &self.body {
            PacketBody::Ipv4 { header, .. } => Some(IpAddr::V4(header.src)),
            PacketBody::Ipv6 { header, .. } => Some(IpAddr::V6(header.src)),
            _ => None,
        }
    }

    /// The transport layer, if the packet has one.
    pub fn transport(&self) -> Option<&Transport> {
        match &self.body {
            PacketBody::Ipv4 { transport, .. } | PacketBody::Ipv6 { transport, .. } => {
                Some(transport)
            }
            _ => None,
        }
    }

    /// The `(source, destination)` transport port pair, if any.
    pub fn ports(&self) -> Option<(u16, u16)> {
        self.transport().and_then(Transport::ports)
    }

    /// The source transport port, if any.
    pub fn src_port(&self) -> Option<u16> {
        self.ports().map(|(s, _)| s)
    }

    /// The destination transport port, if any.
    pub fn dst_port(&self) -> Option<u16> {
        self.ports().map(|(_, d)| d)
    }

    /// Returns `true` if the packet carries uninterpreted ("raw") payload
    /// data — the Table I `Raw data` feature.
    pub fn has_raw_data(&self) -> bool {
        match &self.body {
            PacketBody::Llc { payload, .. } | PacketBody::Other { payload, .. } => {
                !payload.is_empty()
            }
            PacketBody::Ipv4 { transport, .. } | PacketBody::Ipv6 { transport, .. } => {
                match transport {
                    Transport::Tcp { payload, .. } | Transport::Udp { payload, .. } => {
                        matches!(payload, AppPayload::Raw(b) if !b.is_empty())
                    }
                    Transport::Icmp(msg) => !msg.payload.is_empty(),
                    Transport::Icmpv6(_) => false,
                    Transport::Other { payload, .. } => !payload.is_empty(),
                }
            }
            _ => false,
        }
    }

    /// The set of protocols present in this packet (Table I features).
    pub fn protocols(&self) -> ProtocolSet {
        classify::classify(self)
    }

    /// Total frame length on the wire, in bytes — the Table I `Size`
    /// feature.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// Encodes the packet to wire bytes (Ethernet frame, no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        self.encode_into(&mut buf);
        buf
    }

    /// Encodes into a caller-owned buffer (cleared first), so a caller
    /// replaying many packets can reuse one allocation per frame slot
    /// instead of allocating a fresh `Vec` per packet. Produces exactly
    /// the bytes of [`Packet::encode`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        let ethertype = match &self.body {
            PacketBody::Arp(_) => EtherType::Arp,
            PacketBody::Eapol(_) => EtherType::Eapol,
            PacketBody::Llc { header: _, payload } => {
                EtherType::Length((crate::llc::HEADER_LEN + payload.len()) as u16)
            }
            PacketBody::Ipv4 { .. } => EtherType::Ipv4,
            PacketBody::Ipv6 { .. } => EtherType::Ipv6,
            PacketBody::Other { ethertype, .. } => EtherType::from_u16(*ethertype),
        };
        EthernetHeader::new(self.dst, self.src, ethertype).encode(buf);
        match &self.body {
            PacketBody::Arp(arp) => arp.encode(buf),
            PacketBody::Eapol(eapol) => eapol.encode(buf),
            PacketBody::Llc { header, payload } => {
                header.encode(buf);
                buf.put_slice(payload);
            }
            PacketBody::Ipv4 { header, transport } => TRANSPORT_SCRATCH.with(|cell| {
                let (body, nested) = &mut *cell.borrow_mut();
                encode_transport(transport, None, body, nested);
                header.encode(buf, body.len());
                buf.put_slice(body);
            }),
            PacketBody::Ipv6 { header, transport } => TRANSPORT_SCRATCH.with(|cell| {
                let (body, nested) = &mut *cell.borrow_mut();
                encode_transport(transport, Some((header.src, header.dst)), body, nested);
                header.encode(buf, body.len());
                buf.put_slice(body);
            }),
            PacketBody::Other { payload, .. } => buf.put_slice(payload),
        }
    }

    /// Parses a packet from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed layer.
    /// Unknown protocols at any layer degrade gracefully to `Other`/`Raw`
    /// variants instead of failing.
    pub fn parse(bytes: &[u8], timestamp: Timestamp) -> Result<Self, ParseError> {
        Self::parse_inner(bytes, timestamp, &Bytes::copy_from_slice)
    }

    /// Parses a packet from a shared frame buffer, **slicing** `frame`
    /// for every uninterpreted-payload variant (`AppPayload::Raw`, LLC,
    /// unknown EtherTypes, unknown IP protocols) instead of copying it.
    /// The resulting packet shares the frame's allocation.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Packet::parse`].
    pub fn parse_bytes(frame: &Bytes, timestamp: Timestamp) -> Result<Self, ParseError> {
        Self::parse_inner(frame, timestamp, &|subset| frame.slice_ref(subset))
    }

    fn parse_inner(
        bytes: &[u8],
        timestamp: Timestamp,
        raw: &dyn Fn(&[u8]) -> Bytes,
    ) -> Result<Self, ParseError> {
        let (eth, rest) = EthernetHeader::parse(bytes)?;
        let body = match eth.ethertype {
            EtherType::Arp => PacketBody::Arp(ArpPacket::parse(rest)?),
            EtherType::Eapol => PacketBody::Eapol(EapolPacket::parse(rest)?),
            EtherType::Length(_) => {
                let (header, payload) = LlcHeader::parse(rest)?;
                PacketBody::Llc {
                    header,
                    payload: raw(payload),
                }
            }
            EtherType::Ipv4 => {
                let (header, payload) = Ipv4Header::parse(rest)?;
                let transport = parse_transport(header.protocol, payload, raw)?;
                PacketBody::Ipv4 { header, transport }
            }
            EtherType::Ipv6 => {
                let (header, payload) = Ipv6Header::parse(rest)?;
                let transport = parse_transport(header.protocol, payload, raw)?;
                PacketBody::Ipv6 { header, transport }
            }
            EtherType::Other(ethertype) => PacketBody::Other {
                ethertype,
                payload: raw(rest),
            },
        };
        Ok(Packet {
            timestamp,
            src: eth.src,
            dst: eth.dst,
            body,
        })
    }

    // ---- Convenience constructors used by the device simulator ----

    /// A UDP-over-IPv4 packet.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_ipv4(
        timestamp: Timestamp,
        src: MacAddr,
        dst: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: AppPayload,
    ) -> Self {
        Packet::new(
            timestamp,
            src,
            dst,
            PacketBody::Ipv4 {
                header: Ipv4Header::new(src_ip, dst_ip, IpProtocol::Udp),
                transport: Transport::Udp {
                    header: UdpHeader::new(src_port, dst_port),
                    payload,
                },
            },
        )
    }

    /// A TCP-over-IPv4 packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_ipv4(
        timestamp: Timestamp,
        src: MacAddr,
        dst: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        header: TcpHeader,
        payload: AppPayload,
    ) -> Self {
        Packet::new(
            timestamp,
            src,
            dst,
            PacketBody::Ipv4 {
                header: Ipv4Header::new(src_ip, dst_ip, IpProtocol::Tcp),
                transport: Transport::Tcp { header, payload },
            },
        )
    }

    /// A broadcast DHCPDISCOVER from `mac` at `timestamp_micros`.
    pub fn dhcp_discover(mac: MacAddr, xid: u32, timestamp_micros: u64) -> Self {
        Packet::udp_ipv4(
            Timestamp::from_micros(timestamp_micros),
            mac,
            MacAddr::BROADCAST,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::BROADCAST,
            ports::DHCP_CLIENT,
            ports::DHCP_SERVER,
            AppPayload::Dhcp(DhcpMessage::discover(mac, xid)),
        )
    }

    /// A broadcast ARP probe for `target_ip`.
    pub fn arp_probe(timestamp: Timestamp, mac: MacAddr, target_ip: Ipv4Addr) -> Self {
        Packet::new(
            timestamp,
            mac,
            MacAddr::BROADCAST,
            PacketBody::Arp(ArpPacket::probe(mac, target_ip)),
        )
    }

    /// An EAPoL key-handshake message `n` from `mac` to the gateway.
    pub fn eapol_key(timestamp: Timestamp, mac: MacAddr, gateway: MacAddr, n: u8) -> Self {
        Packet::new(
            timestamp,
            mac,
            gateway,
            PacketBody::Eapol(EapolPacket::key_handshake(n)),
        )
    }

    /// A TCP SYN to `dst_ip:dst_port`.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_syn(
        timestamp: Timestamp,
        src: MacAddr,
        dst: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        Packet::tcp_ipv4(
            timestamp,
            src,
            dst,
            src_ip,
            dst_ip,
            TcpHeader::syn(src_port, dst_port, 0),
            AppPayload::Empty,
        )
    }
}

thread_local! {
    /// Per-thread transport-encode scratch: the IP body (its length must
    /// be known before the IP header can be written) and the nested UDP
    /// payload (same, for the UDP length field). Reused across packets so
    /// bulk encoders ([`Packet::encode_into`] in a replay loop) allocate
    /// nothing per packet.
    static TRANSPORT_SCRATCH: std::cell::RefCell<(Vec<u8>, Vec<u8>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Encodes `transport` into `buf` (cleared first). `scratch` is a second
/// buffer for the UDP-payload length pre-pass; neither application
/// encoder recurses into this function, so the two borrows never nest.
fn encode_transport(
    transport: &Transport,
    v6: Option<(Ipv6Addr, Ipv6Addr)>,
    buf: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
) {
    buf.clear();
    match transport {
        Transport::Tcp { header, payload } => {
            header.encode(buf);
            payload.encode(buf);
        }
        Transport::Udp { header, payload } => {
            scratch.clear();
            payload.encode(scratch);
            header.encode(buf, scratch.len());
            buf.put_slice(scratch);
        }
        Transport::Icmp(msg) => msg.encode(buf),
        Transport::Icmpv6(msg) => {
            let (src, dst) = v6.unwrap_or((Ipv6Addr::UNSPECIFIED, Ipv6Addr::UNSPECIFIED));
            msg.encode(buf, src, dst);
        }
        Transport::Other { payload, .. } => buf.put_slice(payload),
    }
}

fn parse_transport(
    protocol: IpProtocol,
    bytes: &[u8],
    raw: &dyn Fn(&[u8]) -> Bytes,
) -> Result<Transport, ParseError> {
    Ok(match protocol {
        IpProtocol::Tcp => {
            let (header, payload) = TcpHeader::parse(bytes)?;
            let app = AppPayload::parse_with(payload, header.src_port, header.dst_port, raw);
            Transport::Tcp {
                header,
                payload: app,
            }
        }
        IpProtocol::Udp => {
            let (header, payload) = UdpHeader::parse(bytes)?;
            let app = AppPayload::parse_with(payload, header.src_port, header.dst_port, raw);
            Transport::Udp {
                header,
                payload: app,
            }
        }
        IpProtocol::Icmp => Transport::Icmp(IcmpMessage::parse(bytes)?),
        IpProtocol::Icmpv6 => Transport::Icmpv6(Icmpv6Message::parse(bytes)?),
        other => Transport::Other {
            protocol: other.to_u8(),
            payload: raw(bytes),
        },
    })
}

/// Re-exported for packet construction ergonomics.
pub use crate::tcp::TcpFlags as Flags;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::Question;
    use crate::tcp::TcpFlags;
    use crate::Protocol;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([0, 1, 2, 3, 4, last])
    }

    fn roundtrip(packet: &Packet) {
        let bytes = packet.encode();
        let parsed = Packet::parse(&bytes, packet.timestamp).expect("parse");
        assert_eq!(&parsed, packet);
    }

    #[test]
    fn dhcp_discover_roundtrip() {
        roundtrip(&Packet::dhcp_discover(mac(1), 42, 1000));
    }

    #[test]
    fn parse_bytes_matches_parse_and_slices_raw_payloads() {
        let raw_payload = AppPayload::Raw(Bytes::copy_from_slice(&[0x80; 24]));
        let candidates = vec![
            Packet::udp_ipv4(
                Timestamp::ZERO,
                mac(1),
                mac(2),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                4000,
                4001,
                raw_payload,
            ),
            Packet::new(
                Timestamp::ZERO,
                mac(3),
                mac(4),
                PacketBody::Other {
                    ethertype: 0x9100,
                    payload: Bytes::copy_from_slice(&[7, 7, 7]),
                },
            ),
            Packet::dhcp_discover(mac(5), 42, 1000),
        ];
        for packet in candidates {
            let frame = Bytes::from(packet.encode());
            let sliced = Packet::parse_bytes(&frame, packet.timestamp).expect("parse");
            assert_eq!(
                sliced,
                Packet::parse(&frame, packet.timestamp).expect("parse")
            );
            assert_eq!(sliced, packet);
        }
    }

    #[test]
    fn arp_probe_roundtrip() {
        roundtrip(&Packet::arp_probe(
            Timestamp::from_millis(5),
            mac(2),
            Ipv4Addr::new(192, 168, 0, 17),
        ));
    }

    #[test]
    fn eapol_roundtrip() {
        roundtrip(&Packet::eapol_key(Timestamp::ZERO, mac(3), mac(0), 2));
    }

    #[test]
    fn dns_query_roundtrip() {
        roundtrip(&Packet::udp_ipv4(
            Timestamp::from_millis(10),
            mac(4),
            mac(0),
            Ipv4Addr::new(192, 168, 0, 9),
            Ipv4Addr::new(192, 168, 0, 1),
            50321,
            ports::DNS,
            AppPayload::Dns(DnsMessage::query(9, [Question::a("cloud.example")])),
        ));
    }

    #[test]
    fn tls_over_tcp_roundtrip() {
        let packet = Packet::tcp_ipv4(
            Timestamp::from_millis(20),
            mac(5),
            mac(0),
            Ipv4Addr::new(192, 168, 0, 9),
            Ipv4Addr::new(52, 29, 100, 7),
            TcpHeader::new(49200, ports::HTTPS, TcpFlags::PSH | TcpFlags::ACK),
            AppPayload::Tls(TlsRecord::client_hello(160)),
        );
        roundtrip(&packet);
        assert!(packet.protocols().contains(Protocol::Https));
    }

    #[test]
    fn llc_roundtrip() {
        roundtrip(&Packet::new(
            Timestamp::ZERO,
            mac(6),
            MacAddr::new([0x01, 0x80, 0xc2, 0, 0, 0]),
            PacketBody::Llc {
                header: LlcHeader::unnumbered(crate::llc::sap::STP),
                payload: Bytes::from_static(&[0u8; 35]),
            },
        ));
    }

    #[test]
    fn accessors() {
        let packet = Packet::dhcp_discover(mac(7), 1, 0);
        assert_eq!(packet.src_mac(), mac(7));
        assert_eq!(packet.dst_mac(), MacAddr::BROADCAST);
        assert_eq!(packet.dst_ip(), Some(IpAddr::V4(Ipv4Addr::BROADCAST)));
        assert_eq!(packet.ports(), Some((68, 67)));
        assert!(!packet.has_raw_data());
    }

    #[test]
    fn raw_payload_detected() {
        let packet = Packet::udp_ipv4(
            Timestamp::ZERO,
            mac(8),
            mac(0),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 3),
            20002,
            20002,
            AppPayload::Raw(Bytes::from_static(b"proprietary")),
        );
        assert!(packet.has_raw_data());
        roundtrip(&packet);
    }

    #[test]
    fn wire_len_matches_encoding() {
        let packet = Packet::dhcp_discover(mac(9), 3, 0);
        assert_eq!(packet.wire_len(), packet.encode().len());
    }

    #[test]
    fn unknown_ethertype_preserved() {
        let packet = Packet::new(
            Timestamp::ZERO,
            mac(10),
            mac(0),
            PacketBody::Other {
                ethertype: 0x88cc, // LLDP
                payload: Bytes::from_static(&[1, 2, 3]),
            },
        );
        roundtrip(&packet);
    }

    #[test]
    fn ipv6_icmpv6_roundtrip() {
        let src: Ipv6Addr = "fe80::1".parse().unwrap();
        let dst: Ipv6Addr = "ff02::2".parse().unwrap();
        let packet = Packet::new(
            Timestamp::from_millis(1),
            mac(11),
            MacAddr::new([0x33, 0x33, 0, 0, 0, 2]),
            PacketBody::Ipv6 {
                header: Ipv6Header::new(src, dst, IpProtocol::Icmpv6),
                transport: Transport::Icmpv6(Icmpv6Message::router_solicitation()),
            },
        );
        roundtrip(&packet);
    }
}
