//! Batched vs per-item stage-1 classification.
//!
//! The streaming runtime classifies every completion of an ingest tick
//! as one batch: forests outermost, fingerprints innermost, so each
//! packed arena stays cache-resident while the whole batch walks it
//! (`Identifier::classify_batch`). Per-item classification cycles all
//! 27 arenas per fingerprint instead. Results are bit-identical
//! (asserted in sentinel-core's tests); this measures only the
//! memory-access effect, per batch size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::{AssessKey, ClassifyScratch, FingerprintDataset, Identifier, IdentifierConfig};
use sentinel_devicesim::{catalog, Testbed};
use sentinel_fingerprint::{extract, Fingerprint, FixedFingerprint};

fn holdout_fingerprints(n: usize) -> Vec<(Fingerprint, FixedFingerprint)> {
    let devices = catalog();
    let testbed = Testbed::new(77);
    (0..n)
        .map(|i| {
            let device = &devices[i % devices.len()];
            let trace = testbed.setup_run(&device.profile, (i / devices.len()) as u64);
            let full = extract(&trace.packets);
            let fixed = FixedFingerprint::from_fingerprint(&full);
            (full, fixed)
        })
        .collect()
}

fn batched_classify(c: &mut Criterion) {
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let probes = holdout_fingerprints(256);

    let mut group = c.benchmark_group("batched_classify");
    for batch in [8usize, 64, 256] {
        let fixed: Vec<&FixedFingerprint> = probes[..batch].iter().map(|(_, f)| f).collect();
        // The two paths must agree before we time them.
        let per_item: Vec<Vec<usize>> = fixed.iter().map(|f| identifier.classify(f)).collect();
        assert_eq!(per_item, identifier.classify_batch(&fixed));
        group.bench_with_input(BenchmarkId::new("sequential", batch), &fixed, |b, fixed| {
            b.iter(|| -> Vec<Vec<usize>> { fixed.iter().map(|f| identifier.classify(f)).collect() })
        });
        group.bench_with_input(BenchmarkId::new("batched", batch), &fixed, |b, fixed| {
            b.iter(|| identifier.classify_batch(fixed))
        });
        // The streaming runtime's steady state: the scratch (contiguous
        // matrix + candidate pool) stays warm across ticks, so a tick is
        // one transpose plus the row-blocked kernel walks — no heap
        // allocations at all (pinned by sentinel-core's alloc_batch test).
        group.bench_with_input(
            BenchmarkId::new("batched_warm", batch),
            &fixed,
            |b, fixed| {
                let mut scratch = ClassifyScratch::default();
                let _ = identifier.classify_batch_in(fixed, &mut scratch);
                b.iter(|| identifier.classify_batch_in(fixed, &mut scratch).len())
            },
        );
    }
    group.finish();
}

fn batched_identify(c: &mut Criterion) {
    // End-to-end identification of one ingest tick's completions:
    // batched stage 1 + sequential stage 2 against the fully per-item
    // path (stage 2 dominates only for discriminated fingerprints).
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, 10, 42);
    let identifier = Identifier::train(&dataset, &IdentifierConfig::default());
    let probes = holdout_fingerprints(64);
    let items: Vec<(&Fingerprint, &FixedFingerprint)> =
        probes.iter().map(|(full, fixed)| (full, fixed)).collect();

    let mut group = c.benchmark_group("batched_identify");
    group.bench_function("sequential_64", |b| {
        b.iter(|| -> Vec<_> {
            items
                .iter()
                .map(|&(full, fixed)| identifier.identify(full, fixed))
                .collect()
        })
    });
    group.bench_function("batched_64", |b| {
        b.iter(|| identifier.identify_batch(&items))
    });
    // The keyed streaming path with warm per-shard scratch: what one
    // runtime tick actually executes per shard.
    let keyed: Vec<(&Fingerprint, &FixedFingerprint, AssessKey)> = probes
        .iter()
        .enumerate()
        .map(|(i, (full, fixed))| (full, fixed, AssessKey::new(i as u64, [i as u8; 6].into())))
        .collect();
    group.bench_function("keyed_warm_64", |b| {
        let mut scratch = ClassifyScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            identifier.identify_keyed_batch_into(&keyed, &mut scratch, &mut out);
            out.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = batched_classify, batched_identify
}
criterion_main!(benches);
