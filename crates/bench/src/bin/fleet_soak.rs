//! Fleet-scale multi-gateway soak: ≥ 1000 home networks, each with its
//! own switch and Sentinel gateway, onboarding staggered device storms
//! (with leaves and mid-setup roaming) against one shared trained
//! model, swept over fleet worker-thread counts.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin fleet_soak
//! cargo run --release -p sentinel-bench --bin fleet_soak -- --smoke --threads 1,2
//! cargo run --release -p sentinel-bench --bin fleet_soak -- \
//!     --homes 2000 --devices 6 --threads 1,2,4 --json results/bench_fleet.json
//! ```
//!
//! Before any throughput number is reported, the bench asserts the
//! fleet determinism contract: every thread count must reproduce the
//! baseline `FleetReport` byte for byte, and the certified wire scanner
//! must have handled every frame (zero decode fallbacks).

use std::time::Instant;

use sentinel_bench::cli::Args;
use sentinel_bench::tables;
use sentinel_core::{
    BankConfig, FingerprintDataset, IdentifierConfig, IoTSecurityService, ServiceConfig,
};
use sentinel_devicesim::catalog;
use sentinel_fleet::{run_fleet, FleetConfig};
use sentinel_ml::ForestConfig;

fn main() {
    let args = Args::from_env();
    let smoke = args.switch("smoke");
    let homes: usize = args.get("homes", if smoke { 40 } else { 1000 });
    let devices_per_home: usize = args.get("devices", 4);
    let train_runs: u64 = args.get("train-runs", if smoke { 5 } else { 10 });
    let trees: usize = args.get("trees", 25);
    let seed: u64 = args.get("seed", 42);
    let threads: Vec<usize> = args
        .get_str("threads")
        .unwrap_or(if smoke { "1,2" } else { "1,2,4" })
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .unwrap_or_else(|_| panic!("invalid thread count in --threads: {t:?}"))
        })
        .collect();
    assert!(!threads.is_empty(), "--threads needs at least one count");

    print!(
        "{}",
        tables::banner("Fleet soak — multi-gateway onboarding storms, leaves and roaming")
    );
    println!(
        "{homes} homes x {devices_per_home} devices, one shared model, \
         thread sweep {threads:?}\n"
    );

    // --- Train the shared IoTSSP once (outside the measured window). ---
    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, train_runs, seed);
    let service_config = ServiceConfig {
        identifier: IdentifierConfig {
            bank: BankConfig {
                forest: ForestConfig::default().with_trees(trees),
                ..BankConfig::default()
            },
            ..IdentifierConfig::default()
        },
    };
    let service = IoTSecurityService::train(&dataset, &service_config);

    // --- The measured fleet runs, one per thread count. ---
    let mut records = Vec::new();
    let mut baseline: Option<(Vec<u8>, sentinel_fleet::FleetReport, f64)> = None;
    for &t in &threads {
        let config = FleetConfig {
            homes,
            devices_per_home,
            seed,
            threads: t,
            ..FleetConfig::default()
        };
        let start = Instant::now();
        let report = run_fleet(&service, &config);
        let elapsed = start.elapsed();

        let bytes = serde_json::to_vec(&report).expect("report serialize");
        let homes_per_sec = homes as f64 / elapsed.as_secs_f64();
        let packets = report.stats.packets_in;
        let pps = packets as f64 / elapsed.as_secs_f64();

        // The determinism contract, asserted before throughput means
        // anything: bit-identical fleet at every thread count, and the
        // certified scanner handled every frame.
        assert_eq!(
            report.stats.frames_decoded, 0,
            "decode fallback at {t} threads"
        );
        assert_eq!(
            report.stats.frames_malformed, 0,
            "malformed frame at {t} threads"
        );
        let speedup = match &baseline {
            None => {
                baseline = Some((bytes, report, pps));
                1.0
            }
            Some((base_bytes, _, base_pps)) => {
                assert_eq!(&bytes, base_bytes, "fleet report diverged at {t} threads");
                pps / base_pps
            }
        };

        println!(
            "threads {t:>2}: {homes} gateways in {:8.1} ms  {homes_per_sec:>8.1} homes/s  \
             {pps:>10.0} pps  speedup {speedup:.2}x",
            elapsed.as_secs_f64() * 1e3
        );
        records.push(format!(
            "    {{\"threads\": {t}, \"elapsed_ms\": {:.3}, \"homes_per_sec\": {:.1}, \
             \"packets_per_sec\": {:.0}, \"speedup\": {:.3}}}",
            elapsed.as_secs_f64() * 1e3,
            homes_per_sec,
            pps,
            speedup
        ));
    }

    let (_, report, _) = baseline.expect("at least one configuration ran");
    let stats = &report.stats;
    println!("\nfleet               {stats}");
    println!(
        "identification      {}/{} identified ({:.1}%)",
        stats.identified,
        stats.onboarded,
        100.0 * stats.identified as f64 / stats.onboarded.max(1) as f64
    );
    println!(
        "enforcement         {} rules installed, {} removed, {} resident, \
         cache hit ratio {:.3}",
        stats.rules_installed,
        stats.rules_removed,
        stats.rules_resident,
        stats.hit_ratio()
    );

    if let Some(path) = args.get_str("json") {
        let stats_json = serde_json::to_string(stats).expect("stats serialize");
        let json = format!(
            "{{\n  \"bench\": \"fleet_soak\",\n  \"homes\": {homes},\n  \
             \"devices_per_home\": {devices_per_home},\n  \"train_runs\": {train_runs},\n  \
             \"seed\": {seed},\n  \"runs\": [\n{}\n  ],\n  \"stats\": {stats_json}\n}}\n",
            records.join(",\n"),
        );
        sentinel_bench::results::write_json(path, &json);
    }
}
