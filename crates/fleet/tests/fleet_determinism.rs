//! Fleet-level determinism: a run is a pure function of `(model, seed,
//! config shape)` — thread count and gateway-construction order must
//! not leak into a single byte of the report.

use sentinel_core::{FingerprintDataset, IoTSecurityService, ServiceConfig};
use sentinel_devicesim::catalog;
use sentinel_fleet::{roamer_route, run_fleet, run_home, FleetConfig};

fn trained_service() -> IoTSecurityService {
    let devices: Vec<_> = catalog().into_iter().take(6).collect();
    let dataset = FingerprintDataset::collect(&devices, 8, 42);
    IoTSecurityService::train(&dataset, &ServiceConfig::default())
}

fn small_config() -> FleetConfig {
    FleetConfig {
        homes: 9,
        devices_per_home: 3,
        ..FleetConfig::default()
    }
}

#[test]
fn byte_identical_across_thread_counts() {
    let service = trained_service();
    let config = small_config();
    let baseline = run_fleet(&service, &config);
    let baseline_bytes = serde_json::to_vec(&baseline).unwrap();

    for threads in [1usize, 2, 4] {
        // Exercise both explicit thread counts and the SENTINEL_THREADS
        // auto path (threads: 0).
        let explicit = run_fleet(
            &service,
            &FleetConfig {
                threads,
                ..config.clone()
            },
        );
        assert_eq!(
            serde_json::to_vec(&explicit).unwrap(),
            baseline_bytes,
            "threads={threads} diverged from baseline"
        );

        std::env::set_var("SENTINEL_THREADS", threads.to_string());
        let auto = run_fleet(
            &service,
            &FleetConfig {
                threads: 0,
                ..config.clone()
            },
        );
        std::env::remove_var("SENTINEL_THREADS");
        assert_eq!(
            serde_json::to_vec(&auto).unwrap(),
            baseline_bytes,
            "SENTINEL_THREADS={threads} diverged from baseline"
        );
    }
}

/// The stage-1 verdict cache is a pure memoization keyed by the exact
/// `F'` bit pattern: enabling it must not move a single byte of the
/// report, at any thread count, and the shared cache must actually get
/// exercised (hits across homes with identical fingerprints).
#[test]
fn verdict_cache_is_byte_invisible() {
    let mut service = trained_service();
    let config = small_config();
    let baseline = run_fleet(&service, &config);
    let baseline_bytes = serde_json::to_vec(&baseline).unwrap();
    assert_eq!(service.verdict_cache_stats(), (0, 0), "cache defaults off");

    service.enable_verdict_cache(true);
    for threads in [1usize, 2, 4] {
        let cached = run_fleet(
            &service,
            &FleetConfig {
                threads,
                ..config.clone()
            },
        );
        assert_eq!(
            serde_json::to_vec(&cached).unwrap(),
            baseline_bytes,
            "verdict cache changed the report at threads={threads}"
        );
    }
    let (hits, lookups) = service.verdict_cache_stats();
    assert_eq!(
        lookups,
        3 * baseline.stats.onboarded,
        "every assessed completion must consult the cache"
    );
    assert!(hits > 0, "repeated runs over one fleet must hit the cache");

    // Disabling restores the uncached path (and drops the counters).
    service.enable_verdict_cache(false);
    assert_eq!(service.verdict_cache_stats(), (0, 0));
    let off = run_fleet(&service, &config);
    assert_eq!(serde_json::to_vec(&off).unwrap(), baseline_bytes);
}

#[test]
fn byte_identical_across_gateway_construction_order() {
    let service = trained_service();
    let config = small_config();
    let fleet = run_fleet(&service, &config);

    // Rebuild every gateway by hand in reverse order: identical homes.
    let devices = catalog();
    let mut homes: Vec<_> = (0..config.homes)
        .rev()
        .map(|home| run_home(&service, &config, &devices, home))
        .collect();
    homes.reverse();
    assert_eq!(
        serde_json::to_vec(&fleet.homes).unwrap(),
        serde_json::to_vec(&homes).unwrap()
    );
}

#[test]
fn same_seed_same_report_fresh_services() {
    // Even the trained service is reproducible: two runs from scratch.
    let a = run_fleet(&trained_service(), &small_config());
    let b = run_fleet(&trained_service(), &small_config());
    assert_eq!(
        serde_json::to_vec(&a).unwrap(),
        serde_json::to_vec(&b).unwrap()
    );
    assert_ne!(
        serde_json::to_vec(&a).unwrap(),
        serde_json::to_vec(&run_fleet(
            &trained_service(),
            &FleetConfig {
                seed: 43,
                ..small_config()
            }
        ))
        .unwrap(),
        "different seed must produce a different fleet"
    );
}

/// A roaming device completes part of its setup at the origin gateway
/// and the rest at the destination: it must be assessed exactly once
/// per gateway it completes setup on, and nowhere else.
#[test]
fn roamer_assessed_exactly_once_per_gateway() {
    let service = trained_service();
    let config = small_config();
    let report = run_fleet(&service, &config);

    let mut saw_roamer = false;
    for home in 0..config.homes {
        let Some((origin, destination)) = roamer_route(&config, home) else {
            continue;
        };
        let origin_home = report.home(origin);
        let destination_home = report.home(destination);
        let Some(mac) = origin_home.roam_out else {
            continue;
        };
        saw_roamer = true;
        assert_eq!(destination_home.roam_in, Some(mac));
        let at_origin = origin_home.reports.iter().filter(|r| r.mac == mac).count();
        let at_destination = destination_home
            .reports
            .iter()
            .filter(|r| r.mac == mac)
            .count();
        assert_eq!(at_origin, 1, "roamer {mac} at origin home {origin}");
        assert_eq!(
            at_destination, 1,
            "roamer {mac} at destination home {destination}"
        );
        for (index, other) in report.homes.iter().enumerate() {
            if index == origin || index == destination {
                continue;
            }
            assert!(
                other.reports.iter().all(|r| r.mac != mac),
                "roamer {mac} leaked into home {index}"
            );
        }
    }
    assert!(saw_roamer, "config produced no roaming device");
}

#[test]
fn fleet_counters_are_consistent() {
    let service = trained_service();
    let config = small_config();
    let report = run_fleet(&service, &config);
    let stats = &report.stats;

    assert_eq!(stats.homes, config.homes);
    assert_eq!(
        stats.onboarded,
        report
            .homes
            .iter()
            .map(|h| h.reports.len() as u64)
            .sum::<u64>()
    );
    assert_eq!(stats.onboarded, stats.identified + stats.unknown);
    assert_eq!(stats.onboarded, stats.rules_installed);
    // Every onboarding fires one own-MAC probe and one stranger probe.
    assert_eq!(stats.cache_lookups, 2 * stats.onboarded);
    assert_eq!(
        stats.probes_allowed + stats.probes_denied,
        stats.cache_lookups
    );
    assert!(
        stats.cache_hits >= stats.onboarded,
        "own-MAC probes must hit"
    );
    assert!(stats.hit_ratio() > 0.0 && stats.hit_ratio() <= 1.0);
    assert!(stats.rules_removed > 0, "leave cadence produced no leaves");
    assert_eq!(
        stats.rules_resident,
        stats.rules_installed - stats.rules_removed
    );
    // The wire scanner certifies every simulated frame: no fallbacks.
    assert_eq!(stats.frames_decoded, 0);
    assert_eq!(stats.frames_malformed, 0);
    assert!(stats.roams > 0);
}

#[test]
fn display_is_stable() {
    let service = trained_service();
    let report = run_fleet(&service, &small_config());
    let line = report.stats.to_string();
    assert!(line.contains("9 homes"));
    assert!(line.contains("decode fallbacks 0"));
}
