//! Machine-learning substrate for the IoT Sentinel reproduction.
//!
//! The paper classifies fixed-size fingerprints with one binary Random
//! Forest per device-type (Breiman, 2001). The `linfa` ecosystem being
//! thin, this crate implements the required pieces from scratch:
//!
//! * [`Dataset`] — a dense design matrix with integer class labels.
//! * [`binning`] — lossless per-column pre-binning for histogram-based
//!   split finding (bit-identical trees, no per-node sorting).
//! * [`DecisionTree`] — CART with Gini impurity and per-split random
//!   feature subsampling.
//! * [`RandomForest`] — bagged trees with majority vote and class
//!   probabilities.
//! * [`crossval`] — stratified k-fold cross-validation splits.
//! * [`metrics`] — accuracy, confusion matrices, precision/recall.
//! * [`packed`] — a contiguous, lockstep-walked prediction arena over a
//!   fitted forest (identical results, hot-path speed).
//! * [`kernel`] — row-blocked data-parallel batch kernels over the
//!   packed arenas, fed by a reusable contiguous [`BatchMatrix`].
//! * [`parallel`] — deterministic fork/join helpers (ordered merges,
//!   `SENTINEL_THREADS` thread-count resolution).
//! * [`sampling`] — bootstrap and without-replacement sampling.
//! * [`pinned`] — the v2 pinned RNG contract: keyed, order-independent
//!   draws for decisions that must not depend on scheduling.
//!
//! Everything is deterministic given a seed, so experiments reproduce
//! bit-for-bit.
//!
//! # Example
//!
//! ```
//! use sentinel_ml::{Dataset, ForestConfig, RandomForest};
//!
//! // A trivially separable problem: class = (x > 0.5).
//! let mut data = Dataset::new(1);
//! for i in 0..100 {
//!     let x = i as f64 / 100.0;
//!     data.push(&[x], usize::from(x > 0.5));
//! }
//! let forest = RandomForest::fit(&data, &ForestConfig::default().with_seed(7));
//! assert_eq!(forest.predict(&[0.9]), 1);
//! assert_eq!(forest.predict(&[0.1]), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod crossval;
pub mod hash;
mod data;
mod forest;
pub mod kernel;
pub mod metrics;
pub mod packed;
pub mod parallel;
pub mod pinned;
pub mod sampling;
mod tree;

pub use binning::BinnedDataset;
pub use data::Dataset;
pub use forest::{FeatureSubsample, ForestConfig, RandomForest};
pub use kernel::BatchMatrix;
pub use packed::PackedForest;
pub use pinned::PinnedRng;
pub use tree::{DecisionTree, FitArena, TreeConfig, TreeParts};
