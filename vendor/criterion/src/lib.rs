//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`, `iter`, `iter_batched`) with a plain wall-clock
//! loop: a short warm-up sizes the per-sample iteration count, then
//! `sample_size` samples are timed and mean/min/max are printed. No
//! statistics beyond that, no HTML reports, no baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How `iter_batched` amortizes setup cost (size hints are ignored by
/// this stand-in; every batch is one routine call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Runs timing loops for a single benchmark.
pub struct Bencher {
    sample_size: usize,
    /// Filled in by the timing loop for the harness to report.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find an iteration count that runs ≥ ~2 ms per sample.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let n = bencher.samples_ns.len() as f64;
    let mean = bencher.samples_ns.iter().sum::<f64>() / n;
    let min = bencher
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<50} mean {:>12} min {:>12} max {:>12}",
        format_ns(mean),
        format_ns(min),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
