//! A cache-packed, read-only view of a fitted [`RandomForest`] for hot
//! prediction loops.
//!
//! [`DecisionTree`](crate::DecisionTree) stores nodes in parallel arrays,
//! which is ideal for fitting and serialization but means one traversal
//! step touches four separate allocations — and a 100-tree forest
//! scatters its nodes over hundreds of small `Vec`s. [`PackedForest`]
//! copies every node of every tree into **one** contiguous arena, and
//! walks several trees in lockstep so the independent node loads overlap
//! instead of serializing on memory latency.
//!
//! Nodes are 24 bytes (split feature, `f64` threshold, both children).
//! When every threshold in the forest round-trips through `f32` exactly
//! — always true for integer-valued features, whose midpoint splits are
//! `k` or `k + 0.5` — the arena narrows to 16-byte nodes, four per cache
//! line, with bit-identical comparisons. Votes, tie-breaks and early
//! exits replicate [`RandomForest::predict`] / [`RandomForest::accepts`]
//! exactly, so a packed forest is a pure acceleration structure: build
//! it once after training (or deserialization) and prediction results
//! are identical.

use crate::forest::RandomForest;
use crate::kernel::{self, BatchMatrix};
use crate::tree::{argmax, LEAF};

/// One wide arena node: a split (`feature != u32::MAX`) routes on
/// `row[feature] <= threshold`; a leaf stores its precomputed majority
/// class in `kids[1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PackedNode {
    threshold: f64,
    feature: u32,
    /// `[left, right]` arena indices at splits; `[0, class]` at leaves.
    kids: [u32; 2],
}

impl PackedNode {
    pub(crate) fn split(feature: u32, threshold: f64, left: u32, right: u32) -> Self {
        PackedNode {
            threshold,
            feature,
            kids: [left, right],
        }
    }

    pub(crate) fn leaf(class: u32) -> Self {
        PackedNode {
            threshold: 0.0,
            feature: LEAF,
            kids: [0, class],
        }
    }
}

/// Leaf marker in a [`NarrowNode`]'s `feature` field.
const LEAF16: u16 = u16::MAX;

/// The 16-byte node: only used when every threshold is exactly
/// representable in `f32`, so the comparison is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NarrowNode {
    threshold: f32,
    feature: u16,
    _pad: u16,
    kids: [u32; 2],
}

/// A node the lockstep walks (per-row and row-blocked) can traverse.
pub(crate) trait ArenaNode: Copy {
    /// The next arena index for `row`, or `None` at a leaf.
    fn advance(&self, row: &[f64]) -> Option<u32>;
    /// The majority class (meaningful at leaves).
    fn class(&self) -> u32;
    /// One kernel step: fetches this node's split value through `fetch`
    /// and returns `(next_cursor, advanced)`. Leaves return themselves
    /// (`me`, `false`), so a finished lane idles in place while the rest
    /// of its block keeps walking. Child selection is branchless —
    /// `kids[usize::from(value > threshold)]`.
    fn step(&self, me: u32, fetch: impl FnOnce(u32) -> f64) -> (u32, bool);
}

impl ArenaNode for PackedNode {
    #[inline]
    fn advance(&self, row: &[f64]) -> Option<u32> {
        if self.feature == LEAF {
            return None;
        }
        Some(self.kids[usize::from(row[self.feature as usize] > self.threshold)])
    }

    #[inline]
    fn class(&self) -> u32 {
        self.kids[1]
    }

    #[inline]
    fn step(&self, me: u32, fetch: impl FnOnce(u32) -> f64) -> (u32, bool) {
        if self.feature == LEAF {
            return (me, false);
        }
        let value = fetch(self.feature);
        (self.kids[usize::from(value > self.threshold)], true)
    }
}

impl ArenaNode for NarrowNode {
    #[inline]
    fn advance(&self, row: &[f64]) -> Option<u32> {
        if self.feature == LEAF16 {
            return None;
        }
        Some(self.kids[usize::from(row[self.feature as usize] > f64::from(self.threshold))])
    }

    #[inline]
    fn class(&self) -> u32 {
        self.kids[1]
    }

    #[inline]
    fn step(&self, me: u32, fetch: impl FnOnce(u32) -> f64) -> (u32, bool) {
        if self.feature == LEAF16 {
            return (me, false);
        }
        let value = fetch(u32::from(self.feature));
        (
            self.kids[usize::from(value > f64::from(self.threshold))],
            true,
        )
    }
}

/// How many trees walk in lockstep: enough independent loads to cover
/// memory latency, few enough that the cursors stay in registers. An
/// odd width also tightens the early-majority exit in [`Arena::accepts`]
/// — with 100 trees (strict majority 51), batches of 5 let a unanimous
/// rejection stop after 50 walks, the information-theoretic minimum.
const LANES: usize = 5;

/// Walks `batch` trees rooted at `roots[first..]` to their leaves and
/// records each tree's class in `classes`.
#[inline]
fn walk_batch<N: ArenaNode>(
    nodes: &[N],
    roots: &[u32],
    first: usize,
    batch: usize,
    row: &[f64],
    classes: &mut [u32; LANES],
) {
    let mut cursors = [0usize; LANES];
    for (lane, cursor) in cursors.iter_mut().enumerate().take(batch) {
        *cursor = roots[first + lane] as usize;
    }
    loop {
        let mut moved = false;
        for cursor in cursors.iter_mut().take(batch) {
            if let Some(next) = nodes[*cursor].advance(row) {
                *cursor = next as usize;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    for (lane, &cursor) in cursors.iter().enumerate().take(batch) {
        classes[lane] = nodes[cursor].class();
    }
}

fn predict_in<N: ArenaNode>(nodes: &[N], roots: &[u32], n_classes: usize, row: &[f64]) -> usize {
    let mut votes = vec![0usize; n_classes];
    let mut classes = [0u32; LANES];
    let n = roots.len();
    let mut done = 0;
    while done < n {
        let batch = LANES.min(n - done);
        walk_batch(nodes, roots, done, batch, row, &mut classes);
        for &class in classes.iter().take(batch) {
            votes[class as usize] += 1;
        }
        done += batch;
    }
    argmax(&votes)
}

fn accepts_in<N: ArenaNode>(nodes: &[N], roots: &[u32], row: &[f64]) -> bool {
    let n = roots.len();
    // Ties go to class 0, so class 1 needs a strict majority.
    let needed = n / 2 + 1;
    let mut ones = 0usize;
    let mut done = 0usize;
    let mut classes = [0u32; LANES];
    while done < n {
        let batch = LANES.min(n - done);
        walk_batch(nodes, roots, done, batch, row, &mut classes);
        for &class in classes.iter().take(batch) {
            ones += usize::from(class == 1);
        }
        done += batch;
        if ones >= needed {
            return true;
        }
        if ones + (n - done) < needed {
            return false;
        }
    }
    ones >= needed
}

/// The node storage: wide is always valid; narrow only when exact.
#[derive(Debug, Clone, PartialEq)]
enum Arena {
    Wide(Vec<PackedNode>),
    Narrow(Vec<NarrowNode>),
}

/// A contiguous prediction arena over all trees of one forest.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedForest {
    arena: Arena,
    roots: Vec<u32>,
    n_classes: usize,
}

impl PackedForest {
    /// Packs a fitted forest. The forest itself is unchanged and stays
    /// the source of truth for serialization and probabilities.
    pub fn from_forest(forest: &RandomForest) -> Self {
        let trees = forest.trees();
        let mut nodes = Vec::with_capacity(trees.iter().map(|tree| tree.node_count().max(1)).sum());
        let roots = trees
            .iter()
            .map(|tree| tree.pack_into(&mut nodes))
            .collect();
        let arena = match narrow(&nodes) {
            Some(narrowed) => Arena::Narrow(narrowed),
            None => Arena::Wide(nodes),
        };
        PackedForest {
            arena,
            roots,
            n_classes: forest.n_classes(),
        }
    }

    /// Number of trees in the arena.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Majority-vote class — identical to [`RandomForest::predict`]
    /// (argmax with ties to the lowest class).
    pub fn predict(&self, row: &[f64]) -> usize {
        match &self.arena {
            Arena::Wide(nodes) => predict_in(nodes, &self.roots, self.n_classes, row),
            Arena::Narrow(nodes) => predict_in(nodes, &self.roots, self.n_classes, row),
        }
    }

    /// Binary acceptance — identical to [`RandomForest::accepts`], with
    /// the same early exit once the vote is mathematically decided.
    pub fn accepts(&self, row: &[f64]) -> bool {
        if self.n_classes != 2 {
            return self.predict(row) == 1;
        }
        match &self.arena {
            Arena::Wide(nodes) => accepts_in(nodes, &self.roots, row),
            Arena::Narrow(nodes) => accepts_in(nodes, &self.roots, row),
        }
    }

    /// Binary acceptance over a whole batch of rows, **appended** to
    /// `out`.
    ///
    /// Each verdict is exactly [`PackedForest::accepts`] on that row;
    /// the point of the batch entry is the memory-access pattern: one
    /// forest's arena is walked by every row back-to-back, so when the
    /// caller loops *forests outermost and fingerprints innermost* (the
    /// identification bank's batched stage 1), the arena the rows share
    /// stays cache-resident across the batch instead of being evicted by
    /// the other 26 forests between every pair of visits.
    ///
    /// Like every batch entry point, this appends into the caller-owned
    /// buffer without clearing or shrinking it: the caller clears `out`
    /// between ticks, so steady-state batching reuses one allocation
    /// instead of handing a fresh vector to every call.
    pub fn accepts_batch(&self, rows: &[&[f64]], out: &mut Vec<bool>) {
        if self.n_classes != 2 {
            out.extend(rows.iter().map(|row| self.predict(row) == 1));
            return;
        }
        // One arena dispatch per batch, not per row.
        match &self.arena {
            Arena::Wide(nodes) => {
                out.extend(rows.iter().map(|row| accepts_in(nodes, &self.roots, row)));
            }
            Arena::Narrow(nodes) => {
                out.extend(rows.iter().map(|row| accepts_in(nodes, &self.roots, row)));
            }
        }
    }

    /// Binary acceptance over a [`BatchMatrix`] batch, **appended** to
    /// `out` — one verdict per matrix row, bit-identical to
    /// [`PackedForest::accepts`] on that row. Appends without clearing,
    /// like every batch entry point; the caller owns (and clears) `out`.
    ///
    /// Each contiguous matrix row runs through the tree-lockstep walk
    /// (five trees in flight per row, the probe row L1-resident, the
    /// arena cached across rows) — measured faster on the 276-feature
    /// fingerprint corpus than the row-blocked kernel
    /// ([`PackedForest::accepts_rows_blocked`]), which walks rows in
    /// lockstep through one tree at a time and pays per-tree compaction
    /// for its finer-grained early exit. The blocked kernel stays as
    /// the shape for tiny arenas or batches that outgrow cache; both
    /// are pinned bit-identical to the scalar path.
    pub fn accepts_rows(&self, matrix: &BatchMatrix, out: &mut Vec<bool>) {
        if self.n_classes != 2 {
            out.extend((0..matrix.rows()).map(|r| self.predict(matrix.row(r)) == 1));
            return;
        }
        // One arena dispatch per batch, not per row.
        match &self.arena {
            Arena::Wide(nodes) => {
                out.extend(
                    (0..matrix.rows()).map(|r| accepts_in(nodes, &self.roots, matrix.row(r))),
                );
            }
            Arena::Narrow(nodes) => {
                out.extend(
                    (0..matrix.rows()).map(|r| accepts_in(nodes, &self.roots, matrix.row(r))),
                );
            }
        }
    }

    /// The row-blocked lockstep kernel (see [`crate::kernel`]) with an
    /// explicit rows-per-block `R`: blocks of rows walk each tree in
    /// lockstep with branchless child selection, votes live in per-row
    /// packed counters, and the mathematically-decided early exit
    /// compacts decided lanes out per tree. Bit-identical to
    /// [`PackedForest::accepts_rows`]; a bench/test hook for sweeping
    /// block sizes.
    #[doc(hidden)]
    pub fn accepts_rows_blocked<const R: usize>(&self, matrix: &BatchMatrix, out: &mut Vec<bool>) {
        if self.n_classes != 2 {
            // Multiclass fallback mirrors `accepts`: verdict is
            // `predict == 1`. Not allocation-free; the bank's one-vs-rest
            // forests are always binary.
            let mut classes = Vec::with_capacity(matrix.rows());
            self.predict_rows_blocked::<R>(matrix, &mut classes);
            out.extend(classes.into_iter().map(|class| class == 1));
            return;
        }
        match &self.arena {
            Arena::Wide(nodes) => kernel::accepts_rows_in::<_, R>(nodes, &self.roots, matrix, out),
            Arena::Narrow(nodes) => {
                kernel::accepts_rows_in::<_, R>(nodes, &self.roots, matrix, out)
            }
        }
    }

    /// Majority-vote class over a [`BatchMatrix`] batch, **appended**
    /// to `out` — one class per matrix row, bit-identical to
    /// [`PackedForest::predict`] on that row (argmax with ties to the
    /// lowest class). Appends without clearing; the caller owns `out`.
    /// Routes through the tree-lockstep walk per contiguous row, like
    /// [`PackedForest::accepts_rows`].
    pub fn predict_rows(&self, matrix: &BatchMatrix, out: &mut Vec<usize>) {
        out.extend((0..matrix.rows()).map(|r| self.predict(matrix.row(r))));
    }

    /// The row-blocked prediction kernel with an explicit rows-per-block
    /// `R` — bit-identical to [`PackedForest::predict_rows`]; a
    /// bench/test hook for sweeping block sizes.
    #[doc(hidden)]
    pub fn predict_rows_blocked<const R: usize>(&self, matrix: &BatchMatrix, out: &mut Vec<usize>) {
        match &self.arena {
            Arena::Wide(nodes) => {
                kernel::predict_rows_in::<_, R>(nodes, &self.roots, self.n_classes, matrix, out)
            }
            Arena::Narrow(nodes) => {
                kernel::predict_rows_in::<_, R>(nodes, &self.roots, self.n_classes, matrix, out)
            }
        }
    }

    /// Whether the arena uses the narrow 16-byte encoding.
    #[doc(hidden)]
    pub fn is_narrow(&self) -> bool {
        matches!(self.arena, Arena::Narrow(_))
    }

    /// Rebuilds this forest over the wide 24-byte arena even when the
    /// narrow encoding applies — a differential-test hook: the narrow
    /// thresholds round-trip `f32` exactly, so the widened forest must
    /// agree bit-for-bit on every path.
    #[doc(hidden)]
    pub fn widened(&self) -> PackedForest {
        let arena = match &self.arena {
            Arena::Wide(nodes) => Arena::Wide(nodes.clone()),
            Arena::Narrow(nodes) => Arena::Wide(nodes.iter().map(widen).collect()),
        };
        PackedForest {
            arena,
            roots: self.roots.clone(),
            n_classes: self.n_classes,
        }
    }
}

/// Exact inverse of the narrow conversion for one node.
fn widen(node: &NarrowNode) -> PackedNode {
    if node.feature == LEAF16 {
        PackedNode::leaf(node.kids[1])
    } else {
        PackedNode::split(
            u32::from(node.feature),
            f64::from(node.threshold),
            node.kids[0],
            node.kids[1],
        )
    }
}

/// Converts to 16-byte nodes iff every threshold survives the `f32`
/// round-trip exactly (then `row > f64::from(t32)` is bit-identical to
/// `row > t64`) and every feature index fits `u16`.
fn narrow(nodes: &[PackedNode]) -> Option<Vec<NarrowNode>> {
    nodes
        .iter()
        .map(|node| {
            if node.feature == LEAF {
                return Some(NarrowNode {
                    threshold: 0.0,
                    feature: LEAF16,
                    _pad: 0,
                    kids: node.kids,
                });
            }
            let threshold = node.threshold as f32;
            if f64::from(threshold) != node.threshold || node.feature >= u32::from(LEAF16) {
                return None;
            }
            Some(NarrowNode {
                threshold,
                feature: node.feature as u16,
                _pad: 0,
                kids: node.kids,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, ForestConfig};

    fn dataset(rows: usize, features: usize, classes: usize) -> Dataset {
        let mut data = Dataset::new(features);
        let mut row = vec![0.0; features];
        for i in 0..rows {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = ((i * 31 + j * 17) % 97) as f64;
            }
            data.push(&row, i % classes);
        }
        data
    }

    #[test]
    fn packed_predict_matches_forest_predict() {
        let data = dataset(150, 12, 2);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(33).with_seed(5));
        let packed = PackedForest::from_forest(&forest);
        assert_eq!(packed.n_trees(), 33);
        // Integer features → exactly representable midpoints → narrow.
        assert!(matches!(packed.arena, Arena::Narrow(_)));
        for i in 0..data.len() {
            let row = data.row(i);
            assert_eq!(packed.predict(row), forest.predict(row), "row {i}");
            assert_eq!(packed.accepts(row), forest.accepts(row), "row {i}");
        }
    }

    #[test]
    fn packed_agrees_on_ambiguous_rows() {
        // Rows off the training manifold, where votes are split and the
        // early exits fire late.
        let data = dataset(100, 6, 2);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(31).with_seed(9));
        let packed = PackedForest::from_forest(&forest);
        for k in 0..50 {
            let row: Vec<f64> = (0..6)
                .map(|j| ((k * 13 + j * 7) % 101) as f64 / 2.0)
                .collect();
            assert_eq!(packed.predict(&row), forest.predict(&row), "probe {k}");
            assert_eq!(packed.accepts(&row), forest.accepts(&row), "probe {k}");
        }
    }

    #[test]
    fn packed_handles_multiclass() {
        let data = dataset(120, 8, 3);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(21).with_seed(3));
        let packed = PackedForest::from_forest(&forest);
        for i in 0..data.len() {
            let row = data.row(i);
            assert_eq!(packed.predict(row), forest.predict(row), "row {i}");
        }
    }

    #[test]
    fn inexact_thresholds_stay_wide_and_agree() {
        // Feature values like 1/3 make split midpoints that do NOT
        // round-trip f32 — the arena must fall back to 24-byte nodes.
        let mut data = Dataset::new(3);
        for i in 0..90 {
            let row = [
                i as f64 / 3.0 + 0.123_456_789_012_345,
                (i % 7) as f64 / 7.0,
                (i % 11) as f64 / 11.0,
            ];
            data.push(&row, usize::from(i % 3 == 0));
        }
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(15).with_seed(2));
        let packed = PackedForest::from_forest(&forest);
        assert!(matches!(packed.arena, Arena::Wide(_)));
        for i in 0..data.len() {
            let row = data.row(i);
            assert_eq!(packed.predict(row), forest.predict(row), "row {i}");
            assert_eq!(packed.accepts(row), forest.accepts(row), "row {i}");
        }
    }

    #[test]
    fn blocked_kernel_matches_scalar_on_both_arenas() {
        // Integer features → narrow arena; widened() forces the wide
        // arena over the same trees. Both kernels, at several block
        // sizes and batch sizes (incl. ragged tails), must equal the
        // scalar verdicts row for row.
        let data = dataset(140, 9, 2);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(25).with_seed(7));
        let packed = PackedForest::from_forest(&forest);
        assert!(packed.is_narrow());
        let wide = packed.widened();
        assert!(!wide.is_narrow());
        let rows: Vec<&[f64]> = (0..data.len()).map(|i| data.row(i)).collect();
        for take in [1usize, 2, 5, 8, 9, 31, 64, 140] {
            let matrix = BatchMatrix::from_rows(rows.iter().take(take).copied());
            let scalar: Vec<bool> = rows
                .iter()
                .take(take)
                .map(|row| packed.accepts(row))
                .collect();
            let mut narrow_out = Vec::new();
            packed.accepts_rows(&matrix, &mut narrow_out);
            assert_eq!(narrow_out, scalar, "narrow kernel, batch {take}");
            let mut wide_out = Vec::new();
            wide.accepts_rows(&matrix, &mut wide_out);
            assert_eq!(wide_out, scalar, "wide kernel, batch {take}");
            let mut blocked = Vec::new();
            packed.accepts_rows_blocked::<3>(&matrix, &mut blocked);
            assert_eq!(blocked, scalar, "block size 3, batch {take}");
        }
    }

    #[test]
    fn blocked_predict_matches_scalar_multiclass() {
        let data = dataset(120, 8, 3);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(21).with_seed(3));
        let packed = PackedForest::from_forest(&forest);
        let rows: Vec<&[f64]> = (0..data.len()).map(|i| data.row(i)).collect();
        let matrix = BatchMatrix::from_rows(rows.iter().copied());
        let mut classes = Vec::new();
        packed.predict_rows(&matrix, &mut classes);
        let scalar: Vec<usize> = rows.iter().map(|row| packed.predict(row)).collect();
        assert_eq!(classes, scalar);
        // The multiclass accepts fallback is predict == 1.
        let mut verdicts = Vec::new();
        packed.accepts_rows(&matrix, &mut verdicts);
        let expected: Vec<bool> = scalar.iter().map(|&class| class == 1).collect();
        assert_eq!(verdicts, expected);
    }

    #[test]
    fn batch_entries_append_without_clearing() {
        let data = dataset(40, 6, 2);
        let forest = RandomForest::fit(&data, &ForestConfig::default().with_trees(9).with_seed(4));
        let packed = PackedForest::from_forest(&forest);
        let rows: Vec<&[f64]> = (0..8).map(|i| data.row(i)).collect();
        let mut out = vec![true];
        packed.accepts_batch(&rows, &mut out);
        assert_eq!(out.len(), 9, "accepts_batch must append, not clear");
        let matrix = BatchMatrix::from_rows(rows.iter().copied());
        packed.accepts_rows(&matrix, &mut out);
        assert_eq!(out.len(), 17, "accepts_rows must append, not clear");
        assert_eq!(out[1..9], out[9..17], "appended verdicts agree");
    }

    #[test]
    fn lane_count_never_splits_a_decision() {
        // Tree counts around the lane width exercise every batch size.
        let data = dataset(80, 6, 2);
        for n_trees in [1usize, 5, 6, 7, 11, 12, 13, 17] {
            let forest = RandomForest::fit(
                &data,
                &ForestConfig::default().with_trees(n_trees).with_seed(11),
            );
            let packed = PackedForest::from_forest(&forest);
            for i in 0..data.len() {
                let row = data.row(i);
                assert_eq!(
                    packed.accepts(row),
                    forest.accepts(row),
                    "{n_trees} trees, row {i}"
                );
            }
        }
    }
}
