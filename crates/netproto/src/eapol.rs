//! EAP over LAN (IEEE 802.1X), including the WPA2 4-way handshake frames.
//!
//! Every WiFi device associating with the Security Gateway performs an
//! EAPoL key exchange, so EAPoL frames open virtually every setup-phase
//! capture — the paper lists EAPoL among its network-layer protocol
//! features (Table I).

use bytes::{BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of the fixed EAPoL header.
pub const HEADER_LEN: usize = 4;

/// EAPoL packet type field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EapolType {
    /// EAP-Packet (0): carries an EAP exchange.
    Eap,
    /// EAPOL-Start (1): supplicant initiates authentication.
    Start,
    /// EAPOL-Logoff (2).
    Logoff,
    /// EAPOL-Key (3): WPA2 4-way handshake messages.
    Key,
    /// Any other type value.
    Other(u8),
}

impl EapolType {
    /// The raw type byte.
    pub fn to_u8(self) -> u8 {
        match self {
            EapolType::Eap => 0,
            EapolType::Start => 1,
            EapolType::Logoff => 2,
            EapolType::Key => 3,
            EapolType::Other(v) => v,
        }
    }

    /// Classifies a raw type byte.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => EapolType::Eap,
            1 => EapolType::Start,
            2 => EapolType::Logoff,
            3 => EapolType::Key,
            v => EapolType::Other(v),
        }
    }
}

/// An EAPoL (802.1X) frame.
///
/// ```
/// use sentinel_netproto::eapol::{EapolPacket, EapolType};
///
/// let msg1 = EapolPacket::key_handshake(1);
/// assert_eq!(msg1.packet_type, EapolType::Key);
/// let mut buf = Vec::new();
/// msg1.encode(&mut buf);
/// assert_eq!(EapolPacket::parse(&buf).unwrap(), msg1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EapolPacket {
    /// Protocol version (2 for 802.1X-2004).
    pub version: u8,
    /// Packet type.
    pub packet_type: EapolType,
    /// Opaque body (key descriptors are not interpreted by the gateway).
    pub body: Bytes,
}

impl EapolPacket {
    /// Creates an EAPoL frame with the given type and body.
    pub fn new(packet_type: EapolType, body: impl Into<Bytes>) -> Self {
        EapolPacket {
            version: 2,
            packet_type,
            body: body.into(),
        }
    }

    /// An EAPOL-Key frame standing in for message `n` (1–4) of the WPA2
    /// 4-way handshake. The body length (95 bytes of key descriptor plus a
    /// marker) matches real captures closely enough for size features.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `1..=4`.
    pub fn key_handshake(n: u8) -> Self {
        assert!((1..=4).contains(&n), "4-way handshake has messages 1-4");
        let mut body = vec![0u8; 95];
        body[0] = 0x02; // descriptor type: RSN key
        body[1] = n;
        EapolPacket::new(EapolType::Key, body)
    }

    /// Appends the frame bytes (header + body) to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.version);
        buf.put_u8(self.packet_type.to_u8());
        buf.put_u16(self.body.len() as u16);
        buf.put_slice(&self.body);
    }

    /// Wire length of the encoded frame.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.body.len()
    }

    /// Parses an EAPoL frame.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if the header or the body length
    /// it declares exceed the input.
    pub fn parse(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("eapol", HEADER_LEN, bytes.len()));
        }
        let version = bytes[0];
        let packet_type = EapolType::from_u8(bytes[1]);
        let body_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        let total = HEADER_LEN + body_len;
        if bytes.len() < total {
            return Err(ParseError::truncated("eapol", total, bytes.len()));
        }
        Ok(EapolPacket {
            version,
            packet_type,
            body: Bytes::copy_from_slice(&bytes[HEADER_LEN..total]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pkt = EapolPacket::new(EapolType::Start, Vec::new());
        let mut buf = Vec::new();
        pkt.encode(&mut buf);
        assert_eq!(buf, vec![2, 1, 0, 0]);
        assert_eq!(EapolPacket::parse(&buf).unwrap(), pkt);
    }

    #[test]
    fn handshake_messages_differ() {
        let m1 = EapolPacket::key_handshake(1);
        let m2 = EapolPacket::key_handshake(2);
        assert_ne!(m1, m2);
        assert_eq!(m1.wire_len(), m2.wire_len());
    }

    #[test]
    #[should_panic(expected = "4-way handshake")]
    fn handshake_message_number_validated() {
        let _ = EapolPacket::key_handshake(5);
    }

    #[test]
    fn declared_length_enforced() {
        // Header claims 10 body bytes but only 2 follow.
        let bytes = [2, 3, 0, 10, 0xaa, 0xbb];
        assert!(matches!(
            EapolPacket::parse(&bytes).unwrap_err(),
            ParseError::Truncated { layer: "eapol", .. }
        ));
    }

    #[test]
    fn type_byte_roundtrip() {
        for raw in 0..=5u8 {
            assert_eq!(EapolType::from_u8(raw).to_u8(), raw);
        }
    }
}
