//! Experiment harness for the IoT Sentinel reproduction.
//!
//! One reproduction binary per paper table/figure (see `src/bin/`), all
//! built on the shared machinery here:
//!
//! * [`evaluation`] — the stratified 10-fold × 10-repetition
//!   cross-validation of Sect. VI-B (Fig. 5, Table III) with ablation
//!   knobs (truncation length, negative ratio, reference count,
//!   pipeline mode).
//! * [`timing`] — wall-clock measurement of the identification stages
//!   (Table IV).
//! * [`enforcement`] — the gateway latency/CPU/memory experiments
//!   (Tables V–VI, Fig. 6).
//! * [`tables`] — plain-text table rendering shared by the binaries.
//! * [`results`] — the shared bench-results JSON writer every target
//!   records its `results/*.json` artifacts through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod enforcement;
pub mod evaluation;
pub mod results;
pub mod tables;
pub mod timing;
