//! Capacity-bounded session table with deterministic LRU shedding.

use std::collections::HashMap;

use sentinel_netproto::MacAddr;

use crate::session::Session;

/// A bounded `MAC → Session` table.
///
/// Admission policy: a new session is always admitted; when the table is
/// full, the least-recently-active session is shed first (oldest
/// `last_seq`, ties broken by MAC so the choice never depends on hash
/// iteration order). Shedding is the explicit overflow policy of the
/// streaming runtime — the shed device simply re-enters monitoring if it
/// keeps talking.
#[derive(Debug, Default)]
pub struct SessionTable {
    capacity: usize,
    sessions: HashMap<MacAddr, Session>,
}

/// The outcome of [`SessionTable::admit`].
///
/// Re-admitting a MAC that already has an in-flight session is a real
/// caller shape (a roaming device re-appearing at the same gateway), so
/// it is an explicit variant rather than a `debug_assert!`: the old
/// session is replaced in place and returned, no innocent LRU victim is
/// shed, and the resident count is unchanged.
#[derive(Debug)]
pub enum Admission {
    /// The session was admitted into free capacity.
    Admitted,
    /// The table was full; the least-recently-active session was shed to
    /// make room.
    Shed(MacAddr, Session),
    /// `mac` already had an in-flight session, which was replaced in
    /// place and is returned here.
    Replaced(Session),
}

impl SessionTable {
    /// Creates a table holding at most `capacity` concurrent sessions.
    pub fn new(capacity: usize) -> Self {
        SessionTable {
            capacity: capacity.max(1),
            sessions: HashMap::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Mutable access to an in-flight session.
    pub fn get_mut(&mut self, mac: MacAddr) -> Option<&mut Session> {
        self.sessions.get_mut(&mac)
    }

    /// Whether `mac` has an in-flight session.
    pub fn contains(&self, mac: MacAddr) -> bool {
        self.sessions.contains_key(&mac)
    }

    /// Admits a new session, shedding the least-recently-active one
    /// first if the table is full. Re-admitting a MAC with an in-flight
    /// session replaces it in place (see [`Admission::Replaced`]) —
    /// nothing else is shed and the resident count is unchanged.
    pub fn admit(&mut self, mac: MacAddr, session: Session) -> Admission {
        if let std::collections::hash_map::Entry::Occupied(mut resident) = self.sessions.entry(mac)
        {
            return Admission::Replaced(resident.insert(session));
        }
        // Shed before inserting so the incoming session can never be its
        // own victim, no matter how stale its sequence number is.
        let shed = if self.sessions.len() >= self.capacity {
            self.shed_lru()
        } else {
            None
        };
        self.sessions.insert(mac, session);
        match shed {
            Some((victim, old)) => Admission::Shed(victim, old),
            None => Admission::Admitted,
        }
    }

    /// Removes and returns a session (on completion).
    pub fn remove(&mut self, mac: MacAddr) -> Option<Session> {
        self.sessions.remove(&mac)
    }

    /// Drops every resident session while keeping the table's
    /// allocation warm — the pooled-runtime reset path
    /// ([`crate::StreamRuntime::reset`]).
    pub fn clear(&mut self) {
        self.sessions.clear();
    }

    /// Drains every resident session, ordered by when it was opened
    /// (then MAC), for deterministic end-of-stream flushing.
    pub fn drain_ordered(&mut self) -> Vec<(MacAddr, Session)> {
        let mut drained: Vec<(MacAddr, Session)> = self.sessions.drain().collect();
        drained.sort_by_key(|(mac, session)| (session.opened_seq(), *mac));
        drained
    }

    fn shed_lru(&mut self) -> Option<(MacAddr, Session)> {
        let victim = self
            .sessions
            .iter()
            .min_by_key(|(mac, session)| (session.last_seq(), **mac))
            .map(|(mac, _)| *mac)?;
        self.sessions.remove(&victim).map(|s| (victim, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_netproto::Timestamp;

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([0, 0, 0, 0, 0, n])
    }

    #[test]
    fn admits_until_capacity_then_sheds_lru() {
        let mut table = SessionTable::new(2);
        assert!(matches!(
            table.admit(mac(1), Session::open(10, Timestamp::ZERO)),
            Admission::Admitted
        ));
        assert!(matches!(
            table.admit(mac(2), Session::open(20, Timestamp::ZERO)),
            Admission::Admitted
        ));
        // mac(1) has the oldest activity (last_seq 10) and is shed.
        let Admission::Shed(shed, session) =
            table.admit(mac(3), Session::open(30, Timestamp::ZERO))
        else {
            panic!("table full: expected a shed");
        };
        assert_eq!(shed, mac(1));
        assert_eq!(session.opened_seq(), 10);
        assert_eq!(table.len(), 2);
        assert!(table.contains(mac(2)) && table.contains(mac(3)));
    }

    #[test]
    fn lru_ties_break_by_mac() {
        let mut table = SessionTable::new(2);
        table.admit(mac(9), Session::open(5, Timestamp::ZERO));
        table.admit(mac(4), Session::open(5, Timestamp::ZERO));
        let Admission::Shed(shed, _) = table.admit(mac(7), Session::open(6, Timestamp::ZERO))
        else {
            panic!("table full: expected a shed");
        };
        assert_eq!(shed, mac(4), "equal last_seq resolves to the smaller MAC");
    }

    #[test]
    fn drain_ordered_is_open_order() {
        let mut table = SessionTable::new(8);
        for (seq, m) in [(30u64, 3u8), (10, 1), (20, 2)] {
            table.admit(mac(m), Session::open(seq, Timestamp::ZERO));
        }
        let order: Vec<MacAddr> = table.drain_ordered().into_iter().map(|(m, _)| m).collect();
        assert_eq!(order, vec![mac(1), mac(2), mac(3)]);
        assert!(table.is_empty());
    }

    #[test]
    fn readmission_replaces_in_place_without_shedding() {
        // Regression: a full table re-admitting a MAC that already has an
        // in-flight session must replace that session in place — not shed
        // an innocent LRU victim and silently overwrite. Roaming devices
        // in the fleet sim are exactly this caller shape.
        let mut table = SessionTable::new(2);
        table.admit(mac(1), Session::open(20, Timestamp::ZERO));
        table.admit(mac(2), Session::open(10, Timestamp::ZERO));
        // mac(2) is the LRU victim candidate; re-admitting mac(1) must
        // not touch it.
        let outcome = table.admit(mac(1), Session::open(30, Timestamp::ZERO));
        assert!(
            table.contains(mac(2)),
            "innocent LRU victim shed on re-admission: {outcome:?}"
        );
        assert_eq!(table.len(), 2);
        let Admission::Replaced(old) = outcome else {
            panic!("expected the stale session back, got {outcome:?}");
        };
        assert_eq!(old.opened_seq(), 20);
        assert_eq!(
            table.get_mut(mac(1)).unwrap().opened_seq(),
            30,
            "fresh session is the resident one"
        );
    }

    #[test]
    fn readmission_below_capacity_still_replaces() {
        let mut table = SessionTable::new(8);
        table.admit(mac(1), Session::open(1, Timestamp::ZERO));
        let outcome = table.admit(mac(1), Session::open(2, Timestamp::ZERO));
        assert!(matches!(outcome, Admission::Replaced(_)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let table = SessionTable::new(0);
        assert_eq!(table.capacity(), 1);
    }
}
