//! **Extension analysis**: which of the 23 Table I features carry the
//! identification signal?
//!
//! Trains the full 27-classifier bank and aggregates Gini feature
//! importances across all per-type forests, folding the 276 `F'`
//! dimensions back onto (a) the 23 Table I features and (b) the 12
//! packet positions. The paper motivates its feature set qualitatively;
//! this analysis quantifies it on the simulated fleet.
//!
//! ```text
//! cargo run --release -p sentinel-bench --bin feature_importance
//! ```

use sentinel_bench::cli::Args;
use sentinel_bench::tables;
use sentinel_core::{BankConfig, ClassifierBank, FingerprintDataset};
use sentinel_devicesim::catalog;
use sentinel_fingerprint::{FEATURE_COUNT, FEATURE_NAMES, FIXED_PACKETS};
use sentinel_ml::ForestConfig;

fn main() {
    let args = Args::from_env();
    let runs: u64 = args.get("runs", 20);
    let seed: u64 = args.get("seed", 42);
    let trees: usize = args.get("trees", 100);

    print!(
        "{}",
        tables::banner("Extension — Gini importance of the Table I features")
    );
    println!("bank: 27 per-type classifiers, {runs} runs/type, {trees} trees each\n");

    let devices = catalog();
    let dataset = FingerprintDataset::collect(&devices, runs, seed);
    let config = BankConfig {
        forest: ForestConfig::default().with_trees(trees),
        seed,
        ..BankConfig::default()
    };
    let bank = ClassifierBank::train(&dataset, &config);

    // Average the 276-dim importances over all 27 classifiers.
    let dims = FIXED_PACKETS * FEATURE_COUNT;
    let mut mean = vec![0.0f64; dims];
    for label in 0..bank.n_types() {
        let importances = bank.classifier_importances(label, dims);
        for (slot, value) in mean.iter_mut().zip(importances) {
            *slot += value / bank.n_types() as f64;
        }
    }

    // Fold onto the 23 Table I features.
    let mut by_feature = [0.0f64; FEATURE_COUNT];
    let mut by_position = [0.0f64; FIXED_PACKETS];
    for (dim, &value) in mean.iter().enumerate() {
        by_feature[dim % FEATURE_COUNT] += value;
        by_position[dim / FEATURE_COUNT] += value;
    }

    let mut ranked: Vec<(usize, f64)> = by_feature.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importances"));
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|&(feature, value)| {
            vec![
                FEATURE_NAMES[feature].to_string(),
                format!("{:.4}", value),
                "#".repeat((value * 200.0).round() as usize),
            ]
        })
        .collect();
    print!(
        "{}",
        tables::render(&["Feature (Table I)", "Importance", ""], &rows)
    );

    println!("\nimportance by packet position in F':");
    for (position, value) in by_position.iter().enumerate() {
        println!(
            "  p{:<2} {:.4} {}",
            position + 1,
            value,
            "#".repeat((value * 100.0).round() as usize)
        );
    }
    println!(
        "\nreading: size/port/destination-counter features dominate (they encode the\n\
         per-vendor setup dialogue), while the early packet positions carry most of\n\
         the signal — consistent with the paper's choice of a 12-packet F'."
    );
}
