//! Corruption differential tests: the decode path must be total — for
//! *any* damaged input it returns a typed [`SnapshotError`], never
//! panics, and never yields a silently different model.
//!
//! The contract, per mutation class:
//!
//! * **zero-length / truncated** input → always `Err`;
//! * **any single bit flip** → `Err`, or `Ok` of a snapshot *equal* to
//!   the original (the only benign flips live in the header's section
//!   count, where growing the count makes the decoder read phantom
//!   table entries whose ids are unknown and skipped);
//! * **bit flips inside section payloads** → always `Err` (every
//!   payload byte is covered by its section's XXH64 checksum);
//! * **arbitrary garbage** → `Err` without panicking.

mod common;

use proptest::prelude::*;

use sentinel_snapshot::Snapshot;

fn golden_bytes() -> Vec<u8> {
    common::golden_snapshot().encode()
}

/// Where the section payloads start: header (16 bytes) plus the
/// four-entry section table (28 bytes each).
fn payload_start(bytes: &[u8]) -> usize {
    let n_sections = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    16 + n_sections * 28
}

#[test]
fn zero_length_input_is_rejected() {
    assert!(Snapshot::decode(&[]).is_err());
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = golden_bytes();
    // Every strict prefix: the fixture is small enough to sweep fully.
    for len in 0..bytes.len() {
        assert!(
            Snapshot::decode(&bytes[..len]).is_err(),
            "truncation to {len} of {} bytes decoded",
            bytes.len()
        );
    }
}

#[test]
fn every_single_byte_corruption_in_a_payload_is_rejected() {
    let bytes = golden_bytes();
    let start = payload_start(&bytes);
    // Every payload byte, one bit flipped: the checksum must catch it.
    for at in start..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[at] ^= 1;
        assert!(
            Snapshot::decode(&mutated).is_err(),
            "flip at payload byte {at} decoded"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A single bit flip anywhere — header, section table or payload —
    /// either fails loudly or changes nothing.
    #[test]
    fn any_bit_flip_fails_or_is_byte_transparent(at in any::<usize>(), bit in 0u8..8) {
        let bytes = golden_bytes();
        let at = at % bytes.len();
        let mut mutated = bytes.clone();
        mutated[at] ^= 1 << bit;
        match Snapshot::decode(&mutated) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(
                decoded,
                common::golden_snapshot(),
                "flip of bit {} at byte {} produced a *different* model",
                bit,
                at
            ),
        }
    }

    /// Several random flips at once: same contract.
    #[test]
    fn bursts_of_bit_flips_fail_or_are_byte_transparent(
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 1..16),
    ) {
        let bytes = golden_bytes();
        let mut mutated = bytes.clone();
        for (at, bit) in &flips {
            mutated[at % bytes.len()] ^= 1 << bit;
        }
        match Snapshot::decode(&mutated) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, common::golden_snapshot()),
        }
    }

    /// Random truncation points (the exhaustive sweep above covers the
    /// golden fixture; this also shaves random *suffixes* after flips).
    #[test]
    fn flip_then_truncate_never_panics(
        at in any::<usize>(),
        bit in 0u8..8,
        keep in any::<usize>(),
    ) {
        let bytes = golden_bytes();
        let mut mutated = bytes.clone();
        mutated[at % bytes.len()] ^= 1 << bit;
        mutated.truncate(keep % bytes.len());
        prop_assert!(Snapshot::decode(&mutated).is_err());
    }

    /// Arbitrary bytes are never a snapshot (and never a panic).
    #[test]
    fn garbage_is_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }

    /// Garbage behind a valid-looking header is still rejected at the
    /// table or checksum layer.
    #[test]
    fn garbage_with_a_valid_magic_is_rejected(tail in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SENTSNAP");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&tail);
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }
}
