//! The measurement lab (Fig. 4): repeated setup runs with factory resets.

use std::io::Write;

use sentinel_netproto::pcap::PcapWriter;
use sentinel_netproto::ParseError;

use crate::{DeviceModel, DeviceProfile, SetupTrace, TraceGenerator};

/// Simulates the paper's device-fingerprint collection lab: each
/// device-type's setup procedure is repeated `n` times (the paper used
/// `n = 20`), with a hard reset — fresh MAC suffix, lease, and timing —
/// between runs.
#[derive(Debug, Clone, Default)]
pub struct Testbed {
    generator: TraceGenerator,
    base_seed: u64,
}

impl Testbed {
    /// Creates a testbed; `base_seed` makes entire collection campaigns
    /// reproducible.
    pub fn new(base_seed: u64) -> Self {
        Testbed {
            generator: TraceGenerator::new(),
            base_seed,
        }
    }

    /// The lab's gateway-side network identities.
    pub fn generator(&self) -> &TraceGenerator {
        &self.generator
    }

    /// Performs setup run number `run` of `profile` (hard reset before
    /// each run).
    pub fn setup_run(&self, profile: &DeviceProfile, run: u64) -> SetupTrace {
        let seed = mix(self.base_seed, &profile.name, run);
        self.generator.generate(profile, seed)
    }

    /// Performs standby-cycle capture number `run` of `profile`
    /// (Sect. VIII-A: fingerprinting devices already installed in a
    /// legacy network from their heartbeat traffic).
    pub fn standby_run(&self, profile: &DeviceProfile, run: u64, cycles: u32) -> SetupTrace {
        let seed = mix(self.base_seed ^ 0xfeed, &profile.name, run);
        self.generator.generate_standby(profile, seed, cycles)
    }

    /// Collects `runs` setup traces of one device-type.
    pub fn collect(&self, profile: &DeviceProfile, runs: u64) -> Vec<SetupTrace> {
        (0..runs).map(|run| self.setup_run(profile, run)).collect()
    }

    /// Collects `runs` traces for every catalog entry, returning
    /// `(type index, trace)` pairs grouped by type.
    pub fn collect_catalog(&self, devices: &[DeviceModel], runs: u64) -> Vec<(usize, SetupTrace)> {
        devices
            .iter()
            .enumerate()
            .flat_map(|(index, device)| {
                self.collect(&device.profile, runs)
                    .into_iter()
                    .map(move |trace| (index, trace))
            })
            .collect()
    }

    /// Exports a trace as a pcap capture (what the lab's tcpdump wrote).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Io`] if writing fails.
    pub fn export_pcap<W: Write>(&self, trace: &SetupTrace, writer: W) -> Result<(), ParseError> {
        let mut pcap = PcapWriter::new(writer)?;
        for packet in &trace.packets {
            pcap.write_packet(packet)?;
        }
        pcap.finish()?;
        Ok(())
    }
}

/// Mixes the campaign seed, device name and run number into a run seed
/// (FNV-1a).
fn mix(base: u64, name: &str, run: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for byte in name.bytes().chain(run.to_le_bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn runs_are_distinct_but_reproducible() {
        let devices = catalog();
        let testbed = Testbed::new(7);
        let a = testbed.setup_run(&devices[0].profile, 0);
        let b = testbed.setup_run(&devices[0].profile, 1);
        let a_again = testbed.setup_run(&devices[0].profile, 0);
        assert_ne!(a.mac, b.mac, "factory reset randomizes the MAC suffix");
        assert_eq!(a, a_again);
    }

    #[test]
    fn collect_catalog_shape() {
        let devices: Vec<_> = catalog().into_iter().take(3).collect();
        let testbed = Testbed::new(1);
        let collected = testbed.collect_catalog(&devices, 4);
        assert_eq!(collected.len(), 12);
        assert_eq!(collected.iter().filter(|(i, _)| *i == 0).count(), 4);
    }

    #[test]
    fn different_base_seeds_give_different_campaigns() {
        let devices = catalog();
        let a = Testbed::new(1).setup_run(&devices[2].profile, 0);
        let b = Testbed::new(2).setup_run(&devices[2].profile, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn pcap_export_roundtrips() {
        let devices = catalog();
        let testbed = Testbed::new(3);
        let trace = testbed.setup_run(&devices[4].profile, 0);
        let mut buf = Vec::new();
        testbed.export_pcap(&trace, &mut buf).unwrap();
        let mut reader = sentinel_netproto::pcap::PcapReader::new(buf.as_slice()).unwrap();
        let packets = reader.read_all().unwrap();
        assert_eq!(packets, trace.packets);
    }

    #[test]
    fn standby_runs_are_reproducible_and_distinct_from_setup() {
        let devices = catalog();
        let testbed = Testbed::new(21);
        let a = testbed.standby_run(&devices[0].profile, 0, 3);
        let b = testbed.standby_run(&devices[0].profile, 0, 3);
        assert_eq!(a, b);
        let setup = testbed.setup_run(&devices[0].profile, 0);
        assert_ne!(a.packets, setup.packets);
    }

    #[test]
    fn standby_cycles_scale_packet_count() {
        let devices = catalog();
        let testbed = Testbed::new(22);
        let one = testbed.standby_run(&devices[4].profile, 0, 1);
        let three = testbed.standby_run(&devices[4].profile, 0, 3);
        assert!(three.packets.len() > one.packets.len());
    }

    #[test]
    fn every_device_has_a_standby_cycle() {
        for device in catalog() {
            assert!(
                !device.profile.standby_phases.is_empty(),
                "{} lacks standby phases",
                device.info.identifier
            );
        }
    }

    #[test]
    fn every_device_produces_nonempty_setup_traffic() {
        let devices = catalog();
        let testbed = Testbed::new(11);
        for device in &devices {
            let trace = testbed.setup_run(&device.profile, 0);
            assert!(
                trace.packets.len() >= 3,
                "{} produced only {} packets",
                device.info.identifier,
                trace.packets.len()
            );
        }
    }
}
