//! UDP datagram headers.

use bytes::BufMut;
use serde::{Deserialize, Serialize};

use crate::ParseError;

/// Length of a UDP header.
pub const HEADER_LEN: usize = 8;

/// A UDP header. Length is derived from the payload at encode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Creates a header with the given ports.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader { src_port, dst_port }
    }

    /// Appends the 8 header bytes for a payload of `payload_len` bytes.
    pub fn encode(&self, buf: &mut impl BufMut, payload_len: usize) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16((HEADER_LEN + payload_len) as u16);
        buf.put_u16(0); // checksum (not modeled)
    }

    /// Parses a header, returning it and the payload delimited by the
    /// length field.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] or [`ParseError::Invalid`] on
    /// malformed input.
    pub fn parse(bytes: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::truncated("udp", HEADER_LEN, bytes.len()));
        }
        let length = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if length < HEADER_LEN {
            return Err(ParseError::invalid("udp", format!("length {length} < 8")));
        }
        if bytes.len() < length {
            return Err(ParseError::truncated("udp", length, bytes.len()));
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
                dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            },
            &bytes[HEADER_LEN..length],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = UdpHeader::new(68, 67);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 4);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let (parsed, payload) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, &[1, 2, 3, 4]);
    }

    #[test]
    fn length_field_bounds_payload() {
        let hdr = UdpHeader::new(5353, 5353);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 1);
        buf.extend_from_slice(&[7, 8, 9]);
        let (_, payload) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(payload, &[7]);
    }

    #[test]
    fn undersized_length_rejected() {
        let bytes = [0, 68, 0, 67, 0, 4, 0, 0];
        assert!(UdpHeader::parse(&bytes).is_err());
    }
}
